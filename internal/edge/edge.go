// Package edge is the cluster's L7 front door: one HTTP listener that
// makes the replicated front ends look like a single service. The
// paper's clients reached FE replicas through round-robin DNS and a
// client-side applet (§3.1.2); the edge is the in-cluster successor —
// FEs are clones (RACS farm), so all the front door does is spread
// load, eject unhealthy replicas, and retry transparently.
//
// The edge joins the SAN as a first-class role and learns the FE pool
// the same way the manager does: fe.heartbeat multicasts on the
// control group, aged by TTL (soft state; losing the table costs one
// rediscovery round, never correctness). Each heartbeat carries the
// FE's HTTP adapter address and its Draining bit — a front end
// disabled for a hot upgrade keeps heartbeating but stops receiving
// new picks, which is what makes monitor-driven upgrade waves
// zero-downtime through the edge.
//
// Routing is least-inflight power-of-two-choices across healthy
// replicas. A backend is ejected after consecutive failures and
// readmitted through a half-open probe: one idempotent request is
// risked against it, success readmits, failure re-arms the timer.
// Idempotent requests (GET/HEAD) that fail are retried once on a
// different replica under a retry budget, so a SIGKILLed FE costs
// clients nothing. Deadlines (X-Deadline-Ns) and trace ids
// (X-Trace-Id) propagate both ways.
package edge

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/san"
	"repro/internal/stub"
)

// Header names shared between the edge, the per-FE HTTP adapters, and
// cmd/node's debug endpoint.
const (
	// HeaderDeadline carries an absolute request deadline in unix
	// nanoseconds; every hop that sees it re-arms its context from it.
	HeaderDeadline = "X-Deadline-Ns"
	// HeaderTraceID carries the end-to-end trace id both ways.
	HeaderTraceID = "X-Trace-Id"
	// HeaderSource reports how the FE produced the response.
	HeaderSource = "X-TranSend-Source"
	// HeaderError classifies a refusal ("overloaded", "disabled",
	// "no-backends") so load generators can tell shed from failure.
	HeaderError = "X-TranSend-Error"
	// HeaderDegraded marks a BASE harvest-reduced answer.
	HeaderDegraded = "X-TranSend-Degraded"
	// HeaderEdge names the edge instance that proxied the response.
	HeaderEdge = "X-TranSend-Edge"
)

// ErrNoBackends is returned when no healthy, non-draining FE is in the
// pool.
var ErrNoBackends = errors.New("edge: no healthy backends")

// ErrUpstream is the sentinel every transport-level upstream failure
// matches via errors.Is — returned (wrapped in *UpstreamError) when
// the retry budget is exhausted or the request was not retryable.
var ErrUpstream = errors.New("edge: upstream failure")

// UpstreamError is the typed upstream failure: which backend, how many
// attempts, and the underlying transport error.
type UpstreamError struct {
	Backend  string
	Attempts int
	Cause    error
}

func (e *UpstreamError) Error() string {
	return fmt.Sprintf("edge: upstream %s failed (attempt %d): %v", e.Backend, e.Attempts, e.Cause)
}

func (e *UpstreamError) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrUpstream) match.
func (e *UpstreamError) Is(target error) bool { return target == ErrUpstream }

// Config assembles an edge.
type Config struct {
	// Name is the edge's component name (default "edge").
	Name string
	// Node is the cluster node hosting the edge process.
	Node string
	// Net is the SAN the edge listens to FE heartbeats on.
	Net *san.Network
	// Listen is the public HTTP listener address ("host:port"; port 0
	// picks a free port). Required.
	Listen string
	// Pool tunes the backend health model.
	Pool PoolConfig
	// RetryBudget bounds retries as a fraction of requests (§retry
	// storms): a retry is spent only while
	// retries+1 <= RetryBudget*requests+1. Zero disables retries.
	RetryBudget float64
	// RequestTimeout bounds requests that arrive without their own
	// X-Deadline-Ns. Default 30s.
	RequestTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "edge"
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// Edge implements cluster.Process: the front-door proxy.
type Edge struct {
	cfg  Config
	ep   *san.Endpoint
	pool *Pool

	httpAddr string
	ln       net.Listener
	client   *http.Client

	running atomic.Bool
	stats   struct {
		requests, proxied, retries              atomic.Uint64
		retryDenied, noBackends, upstreamErrors atomic.Uint64
		relayed5xx                              atomic.Uint64
	}
}

// New creates an edge, binds its HTTP listener (so HTTPAddr is known
// immediately), and eagerly registers its SAN endpoint.
func New(cfg Config) (*Edge, error) {
	cfg = cfg.withDefaults()
	if cfg.Listen == "" {
		return nil, fmt.Errorf("edge: no listen address")
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("edge: listen %s: %w", cfg.Listen, err)
	}
	e := &Edge{
		cfg:      cfg,
		pool:     NewPool(cfg.Pool),
		ln:       ln,
		httpAddr: ln.Addr().String(),
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     30 * time.Second,
			},
		},
	}
	e.ep = cfg.Net.Endpoint(e.addr(), 4096)
	return e, nil
}

func (e *Edge) addr() san.Addr { return san.Addr{Node: e.cfg.Node, Proc: e.cfg.Name} }

// Addr returns the edge's SAN address.
func (e *Edge) Addr() san.Addr { return e.addr() }

// ID implements cluster.Process.
func (e *Edge) ID() string { return e.cfg.Name }

// HTTPAddr returns the bound public listener address.
func (e *Edge) HTTPAddr() string { return e.httpAddr }

// Running reports whether the edge's Run loop is live.
func (e *Edge) Running() bool { return e.running.Load() }

// PoolStats returns the backend pool's counters.
func (e *Edge) PoolStats() PoolStats { return e.pool.Stats() }

// ObserveBackend folds a backend into the pool directly — the test and
// benchmark hook that stands in for an fe.heartbeat.
func (e *Edge) ObserveBackend(key, name, httpAddr string, draining bool) {
	e.pool.Observe(key, name, httpAddr, draining)
}

// Close releases the HTTP listener. Only needed when the edge was
// created but never run (Run's shutdown path closes it otherwise).
func (e *Edge) Close() error {
	if e.running.Load() || e.ln == nil {
		return nil
	}
	return e.ln.Close()
}

// Stats is the edge's externally visible counter snapshot.
type Stats struct {
	Requests       uint64 `json:"requests"`
	Proxied        uint64 `json:"proxied"`
	Retries        uint64 `json:"retries"`
	RetryDenied    uint64 `json:"retry_denied"`
	NoBackends     uint64 `json:"no_backends"`
	UpstreamErrors uint64 `json:"upstream_errors"`
	Relayed5xx     uint64 `json:"relayed_5xx"`
}

// Stats returns a snapshot of counters.
func (e *Edge) Stats() Stats {
	return Stats{
		Requests:       e.stats.requests.Load(),
		Proxied:        e.stats.proxied.Load(),
		Retries:        e.stats.retries.Load(),
		RetryDenied:    e.stats.retryDenied.Load(),
		NoBackends:     e.stats.noBackends.Load(),
		UpstreamErrors: e.stats.upstreamErrors.Load(),
		Relayed5xx:     e.stats.relayed5xx.Load(),
	}
}

// Run implements cluster.Process: consume FE heartbeats into the pool
// and serve the public listener until the context ends.
func (e *Edge) Run(ctx context.Context) error {
	if e.ep == nil || !e.cfg.Net.Lookup(e.addr()) {
		e.ep = e.cfg.Net.Endpoint(e.addr(), 4096)
	}
	ep := e.ep
	defer ep.Close()
	ep.Join(stub.GroupControl)

	if e.ln == nil {
		// A respawn after Run's shutdown closed the listener: rebind
		// the same (now concrete) address.
		ln, err := net.Listen("tcp", e.httpAddr)
		if err != nil {
			return fmt.Errorf("edge: relisten %s: %w", e.httpAddr, err)
		}
		e.ln = ln
	}

	e.running.Store(true)
	defer e.running.Store(false)

	reg := e.cfg.Net.Registry()
	reg.SetCollector("edge."+e.cfg.Name, func(emit func(string, float64)) {
		st := e.Stats()
		emit("requests", float64(st.Requests))
		emit("proxied", float64(st.Proxied))
		emit("retries", float64(st.Retries))
		emit("retry_denied", float64(st.RetryDenied))
		emit("no_backends", float64(st.NoBackends))
		emit("upstream_errors", float64(st.UpstreamErrors))
		emit("relayed_5xx", float64(st.Relayed5xx))
		ps := e.pool.Stats()
		emit("backends", float64(ps.Backends))
		emit("healthy", float64(ps.Healthy))
		emit("draining", float64(ps.Draining))
		emit("ejected", float64(ps.Ejected))
		emit("ejects", float64(ps.Ejects))
		emit("readmits", float64(ps.Readmits))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/status", e.handleStatus)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/", e.handleProxy)
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(e.ln) }()
	defer func() {
		shctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shctx)
		e.ln = nil
	}()

	for {
		select {
		case <-ctx.Done():
			return nil
		case err := <-serveErr:
			if err != nil && err != http.ErrServerClosed {
				return fmt.Errorf("edge: %s: %w", e.cfg.Name, err)
			}
			return nil
		case msg, ok := <-ep.Inbox():
			if !ok {
				return fmt.Errorf("edge: %s endpoint closed", e.cfg.Name)
			}
			if msg.Kind == stub.MsgFEHello {
				if hb, ok := msg.Body.(stub.FEHeartbeat); ok {
					e.pool.Observe(hb.Addr.String(), hb.Name, hb.HTTPAddr, hb.Draining)
				}
			}
			msg.Release()
		}
	}
}

// handleStatus serves the edge's own state as JSON.
func (e *Edge) handleStatus(w http.ResponseWriter, r *http.Request) {
	type status struct {
		Name     string          `json:"name"`
		HTTPAddr string          `json:"http_addr"`
		Stats    Stats           `json:"stats"`
		Pool     PoolStats       `json:"pool"`
		Backends []BackendStatus `json:"backends"`
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(status{
		Name:     e.cfg.Name,
		HTTPAddr: e.httpAddr,
		Stats:    e.Stats(),
		Pool:     e.pool.Stats(),
		Backends: e.pool.Snapshot(),
	})
}

// handleProxy is the front door: pick a backend, forward, retry once
// on a different replica when the request is idempotent and the
// budget allows, relay the response.
func (e *Edge) handleProxy(w http.ResponseWriter, r *http.Request) {
	e.stats.requests.Add(1)
	start := time.Now()
	ctx := r.Context()
	if h := r.Header.Get(HeaderDeadline); h != "" {
		if ns, err := strconv.ParseInt(h, 10, 64); err == nil {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, time.Unix(0, ns))
			defer cancel()
		}
	} else {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.RequestTimeout)
		defer cancel()
	}

	resp, err := e.forward(ctx, r)
	e.cfg.Net.Registry().Histogram("edge."+e.cfg.Name+".latency_ns", nil).
		Observe(float64(time.Since(start)))
	if err != nil {
		w.Header().Set(HeaderEdge, e.cfg.Name)
		switch {
		case errors.Is(err, ErrNoBackends):
			w.Header().Set(HeaderError, "no-backends")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		case ctx.Err() != nil:
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
		default:
			http.Error(w, err.Error(), http.StatusBadGateway)
		}
		return
	}
	defer resp.Body.Close()
	hdr := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			hdr.Add(k, v)
		}
	}
	hdr.Set(HeaderEdge, e.cfg.Name)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	if resp.StatusCode >= 500 {
		e.stats.relayed5xx.Add(1)
	} else {
		e.stats.proxied.Add(1)
	}
}

// allowRetry spends from the retry budget: a retry is permitted only
// while retries stay under RetryBudget per request (plus one so a
// cold edge can retry its very first request).
func (e *Edge) allowRetry() bool {
	if e.cfg.RetryBudget <= 0 {
		return false
	}
	retries := float64(e.stats.retries.Load())
	requests := float64(e.stats.requests.Load())
	return retries+1 <= e.cfg.RetryBudget*requests+1
}

// forward runs the pick/roundtrip/outcome loop. The returned response
// may carry an upstream 5xx — it is relayed verbatim so the FE's
// classification headers (X-TranSend-Error) survive the edge; a
// transport-level failure surfaces as *UpstreamError instead.
func (e *Edge) forward(ctx context.Context, r *http.Request) (*http.Response, error) {
	idempotent := r.Method == http.MethodGet || r.Method == http.MethodHead
	exclude := ""
	// The first attempt's 5xx is kept open while a retry runs: if the
	// retry can do no better (no other backend, transport error), the
	// original upstream reply — with its classification headers — beats
	// a synthesized edge error.
	var prev *http.Response
	for attempt := 1; ; attempt++ {
		pk, err := e.pool.Pick(idempotent, exclude)
		if err != nil {
			if prev != nil {
				return prev, nil
			}
			e.stats.noBackends.Add(1)
			return nil, err
		}
		resp, err := e.roundTrip(ctx, r, pk.HTTPAddr())
		if err != nil {
			pk.Done(false)
			if prev != nil {
				return prev, nil
			}
			uerr := &UpstreamError{Backend: pk.Key(), Attempts: attempt, Cause: err}
			if !idempotent || attempt > 1 || ctx.Err() != nil {
				e.stats.upstreamErrors.Add(1)
				return nil, uerr
			}
			if !e.allowRetry() {
				e.stats.retryDenied.Add(1)
				e.stats.upstreamErrors.Add(1)
				return nil, uerr
			}
			e.stats.retries.Add(1)
			exclude = pk.Key()
			continue
		}
		if resp.StatusCode >= 500 {
			if he := resp.Header.Get(HeaderError); he == "overloaded" || he == "disabled" {
				// A policy refusal from an alive backend — admission
				// control shedding, or a request racing a drain. Not a
				// health signal (ejecting a shedding replica collapses
				// the pool exactly when the cluster is saturated) and
				// not worth spending retry budget on: relay the typed
				// reply and let the client's degrade path decide.
				pk.Done(true)
				if prev != nil {
					_ = prev.Body.Close()
				}
				return resp, nil
			}
			pk.Done(false)
			if prev == nil && idempotent && ctx.Err() == nil && e.allowRetry() {
				prev = resp
				e.stats.retries.Add(1)
				exclude = pk.Key()
				continue
			}
			if prev != nil {
				_ = prev.Body.Close()
			}
			return resp, nil
		}
		pk.Done(true)
		if prev != nil {
			_ = prev.Body.Close()
		}
		return resp, nil
	}
}

// roundTrip forwards one attempt to one backend, stamping the
// context's deadline into X-Deadline-Ns (X-Trace-Id rides along in the
// cloned headers untouched).
func (e *Edge) roundTrip(ctx context.Context, r *http.Request, backend string) (*http.Response, error) {
	out := r.Clone(ctx)
	out.URL.Scheme = "http"
	out.URL.Host = backend
	out.RequestURI = ""
	out.Host = ""
	out.Header.Del("Connection")
	if dl, ok := ctx.Deadline(); ok {
		out.Header.Set(HeaderDeadline, strconv.FormatInt(dl.UnixNano(), 10))
	}
	return e.client.Do(out)
}
