package edge

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced Pool clock.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func newTestPool(clk *fakeClock) *Pool {
	return NewPool(PoolConfig{
		TTL:        10 * time.Second,
		EjectAfter: 3,
		ProbeAfter: time.Second,
		Seed:       1,
		Clock:      clk.Now,
	})
}

func TestPoolEjectAfterConsecutiveFailures(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	p := newTestPool(clk)
	p.Observe("n/fe0", "fe0", "127.0.0.1:1", false)

	// Two failures with a success in between: the counter is
	// *consecutive*, so no eject.
	for _, ok := range []bool{false, false, true, false, false} {
		pk, err := p.Pick(false, "")
		if err != nil {
			t.Fatalf("pick: %v", err)
		}
		pk.Done(ok)
	}
	if st := p.Stats(); st.Ejects != 0 || st.Healthy != 1 {
		t.Fatalf("ejected after non-consecutive failures: %+v", st)
	}

	pk, err := p.Pick(false, "")
	if err != nil {
		t.Fatalf("pick: %v", err)
	}
	pk.Done(false) // third consecutive failure
	st := p.Stats()
	if st.Ejects != 1 || st.Ejected != 1 || st.Healthy != 0 {
		t.Fatalf("want eject after 3 consecutive failures, got %+v", st)
	}
	if _, err := p.Pick(false, ""); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("pick from all-ejected pool: err=%v, want ErrNoBackends", err)
	}
}

func TestPoolHalfOpenProbeReadmission(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	p := newTestPool(clk)
	p.Observe("n/fe0", "fe0", "127.0.0.1:1", false)
	for i := 0; i < 3; i++ {
		pk, _ := p.Pick(false, "")
		pk.Done(false)
	}
	if st := p.Stats(); st.Ejected != 1 {
		t.Fatalf("setup: want 1 ejected, got %+v", st)
	}

	// Before ProbeAfter elapses: no probe offered.
	if _, err := p.Pick(true, ""); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("probe before ProbeAfter: err=%v, want ErrNoBackends", err)
	}

	clk.Advance(2 * time.Second)
	p.Observe("n/fe0", "fe0", "127.0.0.1:1", false) // keep the heartbeat fresh
	pk, err := p.Pick(true, "")
	if err != nil {
		t.Fatalf("probe pick: %v", err)
	}
	if !pk.Probe() {
		t.Fatal("pick past ProbeAfter should be a half-open probe")
	}
	// Only one probe outstanding at a time.
	if _, err := p.Pick(true, ""); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("second concurrent probe: err=%v, want ErrNoBackends", err)
	}

	// Failed probe re-arms the timer.
	pk.Done(false)
	if _, err := p.Pick(true, ""); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("probe immediately after failed probe: err=%v, want ErrNoBackends", err)
	}
	clk.Advance(2 * time.Second)
	p.Observe("n/fe0", "fe0", "127.0.0.1:1", false)
	pk, err = p.Pick(true, "")
	if err != nil || !pk.Probe() {
		t.Fatalf("re-armed probe: pick=%v err=%v", pk, err)
	}

	// Successful probe readmits.
	pk.Done(true)
	st := p.Stats()
	if st.Readmits != 1 || st.Healthy != 1 || st.Ejected != 0 {
		t.Fatalf("want readmission after successful probe, got %+v", st)
	}
	pk, err = p.Pick(false, "")
	if err != nil || pk.Probe() {
		t.Fatalf("post-readmit pick: pk=%v err=%v", pk, err)
	}
	pk.Done(true)
}

func TestPoolDrainingExcludedFromPicks(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	p := newTestPool(clk)
	p.Observe("n/fe0", "fe0", "127.0.0.1:1", false)
	p.Observe("n/fe1", "fe1", "127.0.0.1:2", true) // draining

	for i := 0; i < 16; i++ {
		pk, err := p.Pick(false, "")
		if err != nil {
			t.Fatalf("pick %d: %v", i, err)
		}
		if pk.Key() != "n/fe0" {
			t.Fatalf("pick %d landed on draining backend %s", i, pk.Key())
		}
		pk.Done(true)
	}
	if st := p.Stats(); st.Draining != 1 || st.Healthy != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Drain the survivor too: nothing left.
	p.Observe("n/fe0", "fe0", "127.0.0.1:1", true)
	if _, err := p.Pick(false, ""); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("pick from all-draining pool: err=%v, want ErrNoBackends", err)
	}

	// Un-drain restores service — the hot-upgrade re-enable path.
	p.Observe("n/fe1", "fe1", "127.0.0.1:2", false)
	pk, err := p.Pick(false, "")
	if err != nil || pk.Key() != "n/fe1" {
		t.Fatalf("post-enable pick: pk=%v err=%v", pk, err)
	}
	pk.Done(true)
}

func TestPoolLeastInflightUnderSkew(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	p := newTestPool(clk)
	p.Observe("n/fe0", "fe0", "127.0.0.1:1", false)
	p.Observe("n/fe1", "fe1", "127.0.0.1:2", false)

	// Pin one request in flight on fe0; with two backends,
	// power-of-two-choices always compares both, so every subsequent
	// pick must land on the idle fe1.
	var pinned *Pick
	for pinned == nil {
		pk, err := p.Pick(false, "")
		if err != nil {
			t.Fatalf("pin pick: %v", err)
		}
		if pk.Key() == "n/fe0" {
			pinned = pk
		} else {
			pk.Done(true)
		}
	}
	for i := 0; i < 32; i++ {
		pk, err := p.Pick(false, "")
		if err != nil {
			t.Fatalf("pick %d: %v", i, err)
		}
		if pk.Key() != "n/fe1" {
			t.Fatalf("pick %d landed on the loaded backend", i)
		}
		pk.Done(true)
	}
	pinned.Done(true)

	// Skew the other way: pin one on fe1 — the distribution must
	// follow and every pick lands on fe0.
	var pinned1 *Pick
	for pinned1 == nil {
		pk, err := p.Pick(false, "")
		if err != nil {
			t.Fatalf("pin pick: %v", err)
		}
		if pk.Key() == "n/fe1" {
			pinned1 = pk
		} else {
			pk.Done(true)
		}
	}
	for i := 0; i < 32; i++ {
		pk, err := p.Pick(false, "")
		if err != nil {
			t.Fatalf("pick %d: %v", i, err)
		}
		if pk.Key() != "n/fe0" {
			t.Fatalf("pick %d landed on the loaded backend", i)
		}
		pk.Done(true)
	}
	pinned1.Done(true)
}

// TestPoolSequentialTrafficSpreads: a strictly sequential client never
// has more than one request in flight, so every pick is an inflight
// tie — the tie-break must still spread load across replicas rather
// than pinning one (the P2C first sample is uniform).
func TestPoolSequentialTrafficSpreads(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	p := newTestPool(clk)
	p.Observe("n/fe0", "fe0", "127.0.0.1:1", false)
	p.Observe("n/fe1", "fe1", "127.0.0.1:2", false)

	counts := map[string]int{}
	for i := 0; i < 200; i++ {
		pk, err := p.Pick(false, "")
		if err != nil {
			t.Fatalf("pick %d: %v", i, err)
		}
		counts[pk.Key()]++
		pk.Done(true)
	}
	for _, key := range []string{"n/fe0", "n/fe1"} {
		if counts[key] < 50 {
			t.Fatalf("sequential traffic pinned one replica: %v", counts)
		}
	}
}

func TestPoolExpiresStaleBackends(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	p := newTestPool(clk)
	p.Observe("n/fe0", "fe0", "127.0.0.1:1", false)
	clk.Advance(11 * time.Second) // past TTL
	if st := p.Stats(); st.Backends != 0 || st.Expired != 1 {
		t.Fatalf("want stale backend expired, got %+v", st)
	}
	if _, err := p.Pick(false, ""); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("pick after expiry: err=%v, want ErrNoBackends", err)
	}
}

func TestPoolRespawnRefreshesEjectedSlot(t *testing.T) {
	// The SIGKILL-and-respawn sequence: the backend is ejected, the
	// respawned FE heartbeats a *new* HTTP address under the same SAN
	// key, and the probe against the new address readmits it.
	clk := &fakeClock{now: time.Unix(1000, 0)}
	p := newTestPool(clk)
	p.Observe("n/fe0", "fe0", "127.0.0.1:1", false)
	for i := 0; i < 3; i++ {
		pk, _ := p.Pick(false, "")
		pk.Done(false)
	}
	clk.Advance(2 * time.Second)
	p.Observe("n/fe0", "fe0", "127.0.0.1:9", false) // respawn, new port
	pk, err := p.Pick(true, "")
	if err != nil || !pk.Probe() {
		t.Fatalf("probe after respawn: pk=%v err=%v", pk, err)
	}
	if pk.HTTPAddr() != "127.0.0.1:9" {
		t.Fatalf("probe should target the respawned address, got %s", pk.HTTPAddr())
	}
	pk.Done(true)
	if st := p.Stats(); st.Readmits != 1 || st.Healthy != 1 {
		t.Fatalf("want readmission, got %+v", st)
	}
}
