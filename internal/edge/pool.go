package edge

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// PoolConfig tunes the front-end pool's health model.
type PoolConfig struct {
	// TTL bounds heartbeat staleness: a backend whose last FEHeartbeat
	// is older than this falls out of the pool entirely. Keep it well
	// above the beacon interval — an FE being SIGKILLed and respawned
	// must not lose its (ejected) pool slot in between, or the probe
	// readmission path never gets to run. Default 10s.
	TTL time.Duration
	// EjectAfter is how many consecutive failed requests a backend
	// absorbs before it is ejected from rotation. Default 3.
	EjectAfter int
	// ProbeAfter is how long an ejected backend rests before the pool
	// offers it a single half-open probe request. Default 1s.
	ProbeAfter time.Duration
	// Seed makes the power-of-two-choices sampling deterministic.
	Seed int64
	// Clock is injectable for tests (default time.Now).
	Clock func() time.Time
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.TTL <= 0 {
		c.TTL = 10 * time.Second
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// backend is one FE replica's soft-state pool entry, keyed by its SAN
// address string — stable across respawns, so a killed-and-restarted
// FE refreshes its existing (possibly ejected) slot rather than
// appearing as a stranger.
type backend struct {
	key      string // SAN address ("node/proc")
	name     string
	httpAddr string
	draining bool
	seen     time.Time

	inflight  int
	fails     int // consecutive
	ejected   bool
	ejectedAt time.Time
	probing   bool // a half-open probe request is outstanding
}

// Pool is the edge's soft-state table of FE replicas, learned from
// fe.heartbeat multicasts and aged by TTL (BASE: losing it costs one
// rediscovery round, never correctness). It balances picks across
// healthy backends by least-inflight power-of-two-choices, ejects a
// backend after EjectAfter consecutive failures, and readmits it
// through a half-open probe: one real (idempotent) request is risked
// against the ejected backend after ProbeAfter; success readmits,
// failure re-arms the timer.
type Pool struct {
	cfg PoolConfig

	mu       sync.Mutex
	rng      *rand.Rand
	backends map[string]*backend

	ejects   uint64
	readmits uint64
	expired  uint64
}

// NewPool creates an empty pool.
func NewPool(cfg PoolConfig) *Pool {
	cfg = cfg.withDefaults()
	return &Pool{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		backends: make(map[string]*backend),
	}
}

// Observe folds one FEHeartbeat into the table. Heartbeats without an
// HTTP address (FEs running with no HTTP adapter) are not routable and
// are ignored.
func (p *Pool) Observe(key, name, httpAddr string, draining bool) {
	if key == "" || httpAddr == "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.backends[key]
	if b == nil {
		b = &backend{key: key}
		p.backends[key] = b
	}
	b.name, b.httpAddr, b.draining = name, httpAddr, draining
	b.seen = p.cfg.Clock()
}

// expireLocked drops backends whose heartbeats went stale.
func (p *Pool) expireLocked(now time.Time) {
	for key, b := range p.backends {
		if now.Sub(b.seen) > p.cfg.TTL {
			delete(p.backends, key)
			p.expired++
		}
	}
}

// Pick selects a backend for one request. allowProbe marks the
// request safe to risk against an ejected backend (idempotent, and the
// caller will retry it elsewhere on failure); exclude skips one
// backend key — the replica a retry already failed on.
//
// Selection is deterministic given the pool's seed and state: an
// eligible half-open probe (ejected longest first) wins outright,
// otherwise two candidates are sampled from the key-sorted healthy set
// and the one with fewer requests in flight is chosen.
func (p *Pool) Pick(allowProbe bool, exclude string) (*Pick, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.cfg.Clock()
	p.expireLocked(now)

	if allowProbe {
		var probe *backend
		for _, b := range p.backends {
			if !b.ejected || b.probing || b.draining || b.key == exclude {
				continue
			}
			if now.Sub(b.ejectedAt) < p.cfg.ProbeAfter {
				continue
			}
			if probe == nil || b.ejectedAt.Before(probe.ejectedAt) ||
				(b.ejectedAt.Equal(probe.ejectedAt) && b.key < probe.key) {
				probe = b
			}
		}
		if probe != nil {
			probe.probing = true
			probe.inflight++
			return newPickLocked(p, probe, true), nil
		}
	}

	cands := make([]*backend, 0, len(p.backends))
	for _, b := range p.backends {
		if b.ejected || b.draining || b.key == exclude {
			continue
		}
		cands = append(cands, b)
	}
	if len(cands) == 0 {
		return nil, ErrNoBackends
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].key < cands[j].key })
	chosen := cands[0]
	if len(cands) > 1 {
		// Power of two choices over the key-sorted candidate set: the
		// seeded sample keeps runs reproducible, least-inflight keeps a
		// slow replica from accumulating queue. Ties go to the first
		// sample — which is uniform — so a strictly sequential client
		// (inflight always zero everywhere) still spreads across
		// replicas instead of pinning the lowest key.
		i := p.rng.Intn(len(cands))
		j := p.rng.Intn(len(cands) - 1)
		if j >= i {
			j++
		}
		chosen = cands[i]
		if cands[j].inflight < chosen.inflight {
			chosen = cands[j]
		}
	}
	chosen.inflight++
	return newPickLocked(p, chosen, false), nil
}

// newPickLocked snapshots the backend's routing fields into the Pick
// while the pool lock is held: Observe keeps rewriting the live entry
// (a respawned FE heartbeats a new HTTP address), so the accessors
// must not read it lock-free.
func newPickLocked(p *Pool, b *backend, probe bool) *Pick {
	return &Pick{p: p, b: b, key: b.key, name: b.name, httpAddr: b.httpAddr, probe: probe}
}

// Pick is one routing decision: a borrowed backend slot. Callers must
// call Done exactly once with the request's outcome.
type Pick struct {
	p *Pool
	b *backend

	key      string
	name     string
	httpAddr string

	probe bool
	done  bool
}

// Key returns the picked backend's pool key (its SAN address).
func (pk *Pick) Key() string { return pk.key }

// Name returns the picked backend's FE name.
func (pk *Pick) Name() string { return pk.name }

// HTTPAddr returns the picked backend's HTTP host:port as of the pick.
func (pk *Pick) HTTPAddr() string { return pk.httpAddr }

// Probe reports whether this pick is a half-open probe of an ejected
// backend.
func (pk *Pick) Probe() bool { return pk.probe }

// Done records the request's outcome: consecutive failures eject the
// backend, a successful probe readmits it, a failed probe re-arms the
// probe timer.
func (pk *Pick) Done(ok bool) {
	pk.p.mu.Lock()
	defer pk.p.mu.Unlock()
	if pk.done {
		return
	}
	pk.done = true
	b := pk.b
	b.inflight--
	if pk.probe {
		b.probing = false
		if ok {
			b.ejected = false
			b.fails = 0
			pk.p.readmits++
		} else {
			b.ejectedAt = pk.p.cfg.Clock()
		}
		return
	}
	if ok {
		b.fails = 0
		return
	}
	b.fails++
	if !b.ejected && b.fails >= pk.p.cfg.EjectAfter {
		b.ejected = true
		b.ejectedAt = pk.p.cfg.Clock()
		pk.p.ejects++
	}
}

// BackendStatus is one backend's externally visible state.
type BackendStatus struct {
	Key      string `json:"key"`
	Name     string `json:"name"`
	HTTPAddr string `json:"http_addr"`
	Draining bool   `json:"draining"`
	Ejected  bool   `json:"ejected"`
	Probing  bool   `json:"probing"`
	Inflight int    `json:"inflight"`
	Fails    int    `json:"fails"`
}

// Snapshot returns the backend table in key order.
func (p *Pool) Snapshot() []BackendStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.expireLocked(p.cfg.Clock())
	out := make([]BackendStatus, 0, len(p.backends))
	for _, b := range p.backends {
		out = append(out, BackendStatus{
			Key: b.key, Name: b.name, HTTPAddr: b.httpAddr,
			Draining: b.draining, Ejected: b.ejected, Probing: b.probing,
			Inflight: b.inflight, Fails: b.fails,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// PoolStats count pool membership and health transitions.
type PoolStats struct {
	Backends int    `json:"backends"`
	Healthy  int    `json:"healthy"`
	Draining int    `json:"draining"`
	Ejected  int    `json:"ejected"`
	Ejects   uint64 `json:"ejects"`
	Readmits uint64 `json:"readmits"`
	Expired  uint64 `json:"expired"`
}

// Stats returns pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.expireLocked(p.cfg.Clock())
	st := PoolStats{
		Backends: len(p.backends),
		Ejects:   p.ejects,
		Readmits: p.readmits,
		Expired:  p.expired,
	}
	for _, b := range p.backends {
		switch {
		case b.ejected:
			st.Ejected++
		case b.draining:
			st.Draining++
		default:
			st.Healthy++
		}
	}
	return st
}
