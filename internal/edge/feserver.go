package edge

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/frontend"
	"repro/internal/obs"
)

// FEServer is the per-front-end HTTP adapter: the listener whose
// address an FE advertises in its heartbeats and the edge routes to.
// It lives in this package so edge→frontend is the only new dependency
// direction — the frontend package itself stays free of net/http.
//
// Construction is two-step (NewFEServer binds, Serve attaches the
// front end) because the bound address must be known before the front
// end is built: it goes into frontend.Config.HTTPAddr so the very
// first heartbeat already advertises it.
type FEServer struct {
	fe      *frontend.FrontEnd
	ln      net.Listener
	srv     *http.Server
	timeout time.Duration
}

// NewFEServer binds a listener on host:0 (or any explicit host:port).
func NewFEServer(listen string) (*FEServer, error) {
	if _, _, err := net.SplitHostPort(listen); err != nil {
		listen = net.JoinHostPort(listen, "0")
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("edge: fe listen %s: %w", listen, err)
	}
	return &FEServer{ln: ln, timeout: 30 * time.Second}, nil
}

// Addr returns the bound host:port.
func (s *FEServer) Addr() string { return s.ln.Addr().String() }

// Serve attaches the front end and starts serving. Call once.
func (s *FEServer) Serve(fe *frontend.FrontEnd) {
	s.fe = fe
	mux := http.NewServeMux()
	mux.HandleFunc("/fetch", s.handleFetch)
	s.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() { _ = s.srv.Serve(s.ln) }()
}

// Close shuts the adapter down, gracefully when it was serving.
func (s *FEServer) Close() error {
	if s.srv == nil {
		return s.ln.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// handleFetch adapts one HTTP request onto frontend.Do: deadline from
// X-Deadline-Ns (else the adapter default), trace id adopted from
// X-Trace-Id, refusals classified via X-TranSend-Error so the edge and
// load generators can tell shed from failure.
func (s *FEServer) handleFetch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	url := q.Get("url")
	if url == "" {
		http.Error(w, "missing url", http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if h := r.Header.Get(HeaderDeadline); h != "" {
		if ns, err := strconv.ParseInt(h, 10, 64); err == nil {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, time.Unix(0, ns))
			defer cancel()
		}
	} else if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	if h := r.Header.Get(HeaderTraceID); h != "" {
		if id, err := obs.ParseTraceID(h); err == nil {
			ctx = obs.WithTrace(ctx, id)
		}
	}

	resp, err := s.fe.Do(ctx, frontend.Request{
		URL:  url,
		User: q.Get("user"),
		Raw:  q.Get("raw") == "1",
	})
	if err != nil {
		switch {
		case errors.Is(err, frontend.ErrDisabled):
			w.Header().Set(HeaderError, "disabled")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		case errors.Is(err, frontend.ErrOverloaded):
			w.Header().Set(HeaderError, "overloaded")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		case ctx.Err() != nil:
			w.Header().Set(HeaderError, "deadline")
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
		default:
			http.Error(w, err.Error(), http.StatusBadGateway)
		}
		return
	}
	defer resp.Release()
	w.Header().Set("Content-Type", resp.Blob.MIME)
	w.Header().Set(HeaderSource, resp.Source)
	if resp.Degraded {
		w.Header().Set(HeaderDegraded, "1")
	}
	if resp.Trace.Valid() {
		w.Header().Set(HeaderTraceID, resp.Trace.String())
	}
	_, _ = w.Write(resp.Blob.Data)
}
