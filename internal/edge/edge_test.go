package edge

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/san"
)

func newTestEdge(t *testing.T, retryBudget float64) *Edge {
	t.Helper()
	net := san.NewNetwork(1)
	t.Cleanup(net.Close)
	e, err := New(Config{
		Name:        "edge",
		Node:        "edgenode",
		Net:         net,
		Listen:      "127.0.0.1:0",
		RetryBudget: retryBudget,
		Pool:        PoolConfig{Seed: 1, ProbeAfter: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = e.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	deadline := time.Now().Add(5 * time.Second)
	for !e.Running() {
		if time.Now().After(deadline) {
			t.Fatal("edge did not start")
		}
		time.Sleep(time.Millisecond)
	}
	return e
}

func TestEdgeProxiesHeadersAndDeadline(t *testing.T) {
	var sawDeadline, sawTrace bool
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawDeadline = r.Header.Get(HeaderDeadline) != ""
		sawTrace = r.Header.Get(HeaderTraceID) == "00000000000000ff"
		w.Header().Set(HeaderSource, "cache-distilled")
		w.Header().Set(HeaderTraceID, "00000000000000ff")
		fmt.Fprint(w, "body")
	}))
	defer backend.Close()

	e := newTestEdge(t, 0)
	e.ObserveBackend("n/fe0", "fe0", backend.Listener.Addr().String(), false)

	req, _ := http.NewRequest(http.MethodGet, "http://"+e.HTTPAddr()+"/fetch?url=x", nil)
	req.Header.Set(HeaderTraceID, "00000000000000ff")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(body) != "body" {
		t.Fatalf("status %d body %q", resp.StatusCode, body)
	}
	if !sawDeadline {
		t.Error("backend did not receive X-Deadline-Ns")
	}
	if !sawTrace {
		t.Error("backend did not receive the propagated X-Trace-Id")
	}
	if got := resp.Header.Get(HeaderSource); got != "cache-distilled" {
		t.Errorf("response lost upstream headers: source=%q", got)
	}
	if resp.Header.Get(HeaderTraceID) != "00000000000000ff" {
		t.Error("response lost the trace id")
	}
	if resp.Header.Get(HeaderEdge) != "edge" {
		t.Error("response missing the edge marker header")
	}
	if st := e.Stats(); st.Proxied != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestEdgeRetriesIdempotentOnOtherReplica(t *testing.T) {
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer good.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()

	e := newTestEdge(t, 1.0)
	e.ObserveBackend("n/fe0", "fe0", bad.Listener.Addr().String(), false)
	e.ObserveBackend("n/fe1", "fe1", good.Listener.Addr().String(), false)

	// Every GET must come back 200: first-attempt 5xxs are retried on
	// the other replica under the (ample) budget.
	for i := 0; i < 8; i++ {
		resp, err := http.Get("http://" + e.HTTPAddr() + "/fetch?url=x")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != "ok" {
			t.Fatalf("request %d: status %d body %q", i, resp.StatusCode, body)
		}
	}
	if st := e.Stats(); st.Proxied != 8 {
		t.Errorf("stats: %+v", st)
	}
}

func TestEdgeRetryBudgetExhaustionReturnsTypedError(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from here on

	e := newTestEdge(t, 0) // no budget: first failure is final
	e.ObserveBackend("n/fe0", "fe0", dead.Listener.Addr().String(), false)

	req, _ := http.NewRequest(http.MethodGet, "http://127.0.0.1/fetch?url=x", nil)
	_, err := e.forward(context.Background(), req)
	if err == nil {
		t.Fatal("forward against a dead backend succeeded")
	}
	if !errors.Is(err, ErrUpstream) {
		t.Fatalf("err=%v, want errors.Is(_, ErrUpstream)", err)
	}
	var uerr *UpstreamError
	if !errors.As(err, &uerr) || uerr.Backend != "n/fe0" {
		t.Fatalf("err=%#v, want *UpstreamError naming the backend", err)
	}
	st := e.Stats()
	if st.RetryDenied != 1 || st.UpstreamErrors != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestEdgeNoBackendsIs503(t *testing.T) {
	e := newTestEdge(t, 0)
	resp, err := http.Get("http://" + e.HTTPAddr() + "/fetch?url=x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get(HeaderError) != "no-backends" {
		t.Fatalf("error header %q", resp.Header.Get(HeaderError))
	}
}

func TestEdgeRelays5xxVerbatim(t *testing.T) {
	shed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderError, "overloaded")
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer shed.Close()

	e := newTestEdge(t, 0) // no retry: the 5xx is relayed as-is
	e.ObserveBackend("n/fe0", "fe0", shed.Listener.Addr().String(), false)

	resp, err := http.Get("http://" + e.HTTPAddr() + "/fetch?url=x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get(HeaderError) != "overloaded" {
		t.Fatalf("classification header lost: %q", resp.Header.Get(HeaderError))
	}
	if st := e.Stats(); st.Relayed5xx != 1 {
		t.Errorf("stats: %+v", st)
	}
}

// TestEdgeShedDoesNotEject: an FE refusing by policy (typed
// "overloaded"/"disabled" 503) is alive — the refusal must not count
// toward ejection or spend retry budget, or admission control would
// collapse the pool exactly when the cluster saturates.
func TestEdgeShedDoesNotEject(t *testing.T) {
	shed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderError, "overloaded")
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer shed.Close()

	e := newTestEdge(t, 1.0)
	e.ObserveBackend("n/fe0", "fe0", shed.Listener.Addr().String(), false)

	for i := 0; i < 8; i++ { // far past EjectAfter
		resp, err := http.Get("http://" + e.HTTPAddr() + "/fetch?url=x")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.Header.Get(HeaderError) != "overloaded" {
			t.Fatalf("request %d: error header %q, want the typed shed", i, resp.Header.Get(HeaderError))
		}
	}
	if st := e.PoolStats(); st.Ejects != 0 || st.Healthy != 1 {
		t.Fatalf("shedding ejected the backend: %+v", st)
	}
	if st := e.Stats(); st.Retries != 0 {
		t.Fatalf("shed responses spent retry budget: %+v", st)
	}
}

// TestEdgeRelaysFirst5xxWhenRetryFindsNoBackend: with a single (bad)
// replica, a retried 5xx has nowhere to go — the client must get the
// original upstream reply back, not a synthesized no-backends error.
func TestEdgeRelaysFirst5xxWhenRetryFindsNoBackend(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "frontend: fe0 stopped", http.StatusBadGateway)
	}))
	defer bad.Close()

	e := newTestEdge(t, 1.0)
	e.ObserveBackend("n/fe0", "fe0", bad.Listener.Addr().String(), false)

	resp, err := http.Get("http://" + e.HTTPAddr() + "/fetch?url=x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d body %q, want the upstream 502 relayed", resp.StatusCode, body)
	}
	if st := e.Stats(); st.NoBackends != 0 {
		t.Fatalf("retry dead-end surfaced as no-backends: %+v", st)
	}
}

func TestEdgeStatusEndpoint(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer backend.Close()

	e := newTestEdge(t, 0.5)
	e.ObserveBackend("n/fe0", "fe0", backend.Listener.Addr().String(), false)
	if _, err := http.Get("http://" + e.HTTPAddr() + "/fetch?url=x"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + e.HTTPAddr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Name  string `json:"name"`
		Stats struct {
			Requests uint64 `json:"requests"`
		} `json:"stats"`
		Pool     PoolStats       `json:"pool"`
		Backends []BackendStatus `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Name != "edge" || status.Stats.Requests < 1 || status.Pool.Healthy != 1 || len(status.Backends) != 1 {
		t.Fatalf("status: %+v", status)
	}
}
