// Package softstate provides the BASE building blocks the paper's SNS
// layer is made of (§1.4, §2.2.4, §3.1.3): TTL tables whose entries
// are kept alive by periodic beacons and silently expire otherwise,
// beacon tickers, and process-peer watchdogs that infer failure from
// silence and restart their peer rather than mirror its state.
//
// Nothing here is durable and nothing needs crash recovery: a restarted
// component simply rebuilds its tables from the next few beacons,
// which is precisely the simplification BASE buys over the original
// process-pair/hard-state manager prototype described in §3.1.3.
package softstate

import (
	"sync"
	"time"
)

// Clock abstracts time for tests. The zero value of components uses
// real time.
type Clock func() time.Time

func (c Clock) now() time.Time {
	if c == nil {
		return time.Now()
	}
	return c()
}

// Entry is a soft-state record with its refresh metadata.
type Entry[V any] struct {
	Value     V
	Refreshed time.Time
}

// Table is a TTL-expiring map: entries must be refreshed via Put
// before TTL elapses or they vanish. It is safe for concurrent use.
//
// Reads (Get, Len, Snapshot) are non-destructive: they filter expired
// entries out of their results but never remove them, so Expired()
// remains the single consumer of expiry events. A monitoring loop
// polling Len or Snapshot concurrently with a policy loop acting on
// Expired() can never steal an expiry notification from it — the race
// that once left a crashed front end unrestarted because a status
// poller pruned its just-expired heartbeat entry first.
type Table[V any] struct {
	ttl   time.Duration
	clock Clock

	mu sync.Mutex
	m  map[string]Entry[V]
}

// NewTable creates a table whose entries expire ttl after their last
// refresh. A nil clock uses real time.
func NewTable[V any](ttl time.Duration, clock Clock) *Table[V] {
	if ttl <= 0 {
		panic("softstate: ttl must be positive")
	}
	return &Table[V]{ttl: ttl, clock: clock, m: make(map[string]Entry[V])}
}

// Put inserts or refreshes an entry.
func (t *Table[V]) Put(key string, v V) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[key] = Entry[V]{Value: v, Refreshed: t.clock.now()}
}

// Touch refreshes an entry's TTL without changing its value. It
// reports whether the entry existed (and was still live); an expired
// entry is not refreshed and is left for Expired() to collect.
func (t *Table[V]) Touch(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.m[key]
	if !ok || t.expired(e) {
		return false
	}
	e.Refreshed = t.clock.now()
	t.m[key] = e
	return true
}

// Get returns a live entry's value. An expired entry reads as absent
// but is left in place for Expired() to collect.
func (t *Table[V]) Get(key string) (V, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.m[key]
	if !ok || t.expired(e) {
		var zero V
		return zero, false
	}
	return e.Value, true
}

// Delete removes an entry immediately (explicit de-registration).
func (t *Table[V]) Delete(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.m, key)
}

// Len returns the number of live entries.
func (t *Table[V]) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, e := range t.m {
		if !t.expired(e) {
			n++
		}
	}
	return n
}

// Snapshot returns all live entries.
func (t *Table[V]) Snapshot() map[string]V {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]V, len(t.m))
	for k, e := range t.m {
		if !t.expired(e) {
			out[k] = e.Value
		}
	}
	return out
}

// Expired returns the keys that just expired and removes them. Useful
// for components that need to act on expiry (e.g. the manager
// reporting a lost worker).
func (t *Table[V]) Expired() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var gone []string
	for k, e := range t.m {
		if t.expired(e) {
			gone = append(gone, k)
			delete(t.m, k)
		}
	}
	return gone
}

// ExpiredEntries removes and returns the entries that just expired,
// values included — for consumers whose expiry action needs more than
// the key (e.g. the manager resolving which process's supervisor owns
// a dead component from the heartbeat's Node field). Like Expired, it
// is a destructive read and must stay the table's single expiry
// consumer.
func (t *Table[V]) ExpiredEntries() map[string]V {
	t.mu.Lock()
	defer t.mu.Unlock()
	var gone map[string]V
	for k, e := range t.m {
		if t.expired(e) {
			if gone == nil {
				gone = make(map[string]V)
			}
			gone[k] = e.Value
			delete(t.m, k)
		}
	}
	return gone
}

func (t *Table[V]) expired(e Entry[V]) bool {
	return t.clock.now().Sub(e.Refreshed) > t.ttl
}

// Watchdog implements process-peer fault tolerance (§2.2.4): it
// expects Feed to be called at least every Timeout (normally on every
// beacon from the watched peer); on silence it invokes OnSilence —
// typically "restart the peer" — then keeps watching. Unlike process
// pairs, the watchdog carries none of the peer's state.
type Watchdog struct {
	Timeout   time.Duration
	OnSilence func(silences int)

	mu       sync.Mutex
	timer    *time.Timer
	silences int
	stopped  bool
}

// Start arms the watchdog. It must be called before Feed.
func (w *Watchdog) Start() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.timer != nil {
		return
	}
	w.stopped = false
	w.timer = time.AfterFunc(w.Timeout, w.fire)
}

// Feed resets the silence timer; call it whenever the peer shows life.
func (w *Watchdog) Feed() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.timer == nil || w.stopped {
		return
	}
	w.silences = 0
	w.timer.Reset(w.Timeout)
}

// Stop disarms the watchdog.
func (w *Watchdog) Stop() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stopped = true
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
}

// Silences returns how many consecutive timeouts have fired since the
// last Feed.
func (w *Watchdog) Silences() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.silences
}

func (w *Watchdog) fire() {
	w.mu.Lock()
	if w.stopped || w.timer == nil {
		w.mu.Unlock()
		return
	}
	w.silences++
	n := w.silences
	cb := w.OnSilence
	// Re-arm before invoking so a hung callback cannot disable
	// monitoring.
	w.timer.Reset(w.Timeout)
	w.mu.Unlock()
	if cb != nil {
		cb(n)
	}
}

// Beacon periodically invokes a send function — the paper's
// "periodically beacons its existence on a multicast group" (§3.1.2).
type Beacon struct {
	Interval time.Duration
	Send     func()

	mu     sync.Mutex
	ticker *time.Ticker
	done   chan struct{}
}

// Start begins beaconing immediately (one beacon right away, then
// every Interval).
func (b *Beacon) Start() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done != nil {
		return
	}
	b.done = make(chan struct{})
	b.ticker = time.NewTicker(b.Interval)
	go func(done chan struct{}, tk *time.Ticker) {
		b.Send()
		for {
			select {
			case <-tk.C:
				b.Send()
			case <-done:
				return
			}
		}
	}(b.done, b.ticker)
}

// Stop halts beaconing.
func (b *Beacon) Stop() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done == nil {
		return
	}
	close(b.done)
	b.ticker.Stop()
	b.done = nil
	b.ticker = nil
}

// MovingAverage is the weighted (exponential) moving average the
// manager applies to worker load reports (§3.1.2): "computes weighted
// moving averages ... and piggybacks the resulting information on its
// beacons".
type MovingAverage struct {
	Alpha float64 // weight of the newest sample, in (0, 1]

	mu      sync.Mutex
	value   float64
	samples int
}

// Add incorporates a sample and returns the new average.
func (m *MovingAverage) Add(x float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	a := m.Alpha
	if a <= 0 || a > 1 {
		a = 0.3
	}
	if m.samples == 0 {
		m.value = x
	} else {
		m.value = a*x + (1-a)*m.value
	}
	m.samples++
	return m.value
}

// Value returns the current average (0 before any samples).
func (m *MovingAverage) Value() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.value
}

// Samples returns how many samples have been added.
func (m *MovingAverage) Samples() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.samples
}
