package softstate

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// fakeClock is a manually advanced clock for TTL tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func TestTableExpiry(t *testing.T) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	tb := NewTable[string](time.Second, fc.Now)
	tb.Put("w1", "distiller")
	if v, ok := tb.Get("w1"); !ok || v != "distiller" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	fc.Advance(999 * time.Millisecond)
	if _, ok := tb.Get("w1"); !ok {
		t.Fatal("entry expired early")
	}
	fc.Advance(2 * time.Millisecond)
	if _, ok := tb.Get("w1"); ok {
		t.Fatal("entry survived past TTL")
	}
}

func TestTableRefresh(t *testing.T) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	tb := NewTable[int](time.Second, fc.Now)
	tb.Put("k", 1)
	for i := 0; i < 5; i++ {
		fc.Advance(900 * time.Millisecond)
		if !tb.Touch("k") {
			t.Fatalf("Touch failed at refresh %d", i)
		}
	}
	if _, ok := tb.Get("k"); !ok {
		t.Fatal("refreshed entry expired")
	}
	fc.Advance(1100 * time.Millisecond)
	if tb.Touch("k") {
		t.Fatal("Touch succeeded on expired entry")
	}
}

func TestTableExpiredReporting(t *testing.T) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	tb := NewTable[int](time.Second, fc.Now)
	tb.Put("a", 1)
	tb.Put("b", 2)
	fc.Advance(500 * time.Millisecond)
	tb.Put("c", 3)
	fc.Advance(600 * time.Millisecond)
	gone := tb.Expired()
	if len(gone) != 2 {
		t.Fatalf("Expired = %v, want a and b", gone)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}
	if snap := tb.Snapshot(); len(snap) != 1 || snap["c"] != 3 {
		t.Fatalf("Snapshot = %v", snap)
	}
}

func TestTableDelete(t *testing.T) {
	tb := NewTable[int](time.Hour, nil)
	tb.Put("k", 1)
	tb.Delete("k")
	if _, ok := tb.Get("k"); ok {
		t.Fatal("deleted entry still present")
	}
}

func TestTableConcurrency(t *testing.T) {
	tb := NewTable[int](time.Hour, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := string(rune('a' + g))
			for i := 0; i < 1000; i++ {
				tb.Put(key, i)
				tb.Get(key)
				tb.Touch(key)
			}
		}()
	}
	wg.Wait()
	if tb.Len() != 8 {
		t.Fatalf("Len = %d, want 8", tb.Len())
	}
}

func TestWatchdogFiresOnSilence(t *testing.T) {
	var fired atomic.Int32
	w := &Watchdog{
		Timeout:   20 * time.Millisecond,
		OnSilence: func(n int) { fired.Add(1) },
	}
	w.Start()
	defer w.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for fired.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fired.Load() == 0 {
		t.Fatal("watchdog never fired")
	}
}

func TestWatchdogFedStaysQuiet(t *testing.T) {
	var fired atomic.Int32
	w := &Watchdog{
		Timeout:   50 * time.Millisecond,
		OnSilence: func(n int) { fired.Add(1) },
	}
	w.Start()
	defer w.Stop()
	for i := 0; i < 10; i++ {
		time.Sleep(10 * time.Millisecond)
		w.Feed()
	}
	if fired.Load() != 0 {
		t.Fatalf("watchdog fired %d times while fed", fired.Load())
	}
}

func TestWatchdogCountsConsecutiveSilences(t *testing.T) {
	counts := make(chan int, 16)
	w := &Watchdog{
		Timeout:   10 * time.Millisecond,
		OnSilence: func(n int) { counts <- n },
	}
	w.Start()
	defer w.Stop()
	first := <-counts
	second := <-counts
	if first != 1 || second != 2 {
		t.Fatalf("silence counts = %d, %d; want 1, 2", first, second)
	}
	w.Feed()
	if w.Silences() != 0 {
		t.Fatal("Feed did not reset silence count")
	}
}

func TestWatchdogStop(t *testing.T) {
	var fired atomic.Int32
	w := &Watchdog{Timeout: 10 * time.Millisecond, OnSilence: func(int) { fired.Add(1) }}
	w.Start()
	w.Stop()
	time.Sleep(50 * time.Millisecond)
	if fired.Load() != 0 {
		t.Fatal("stopped watchdog fired")
	}
	// Feed after stop is a no-op, not a crash.
	w.Feed()
}

func TestBeacon(t *testing.T) {
	var n atomic.Int32
	b := &Beacon{Interval: 10 * time.Millisecond, Send: func() { n.Add(1) }}
	b.Start()
	b.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for n.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	b.Stop()
	b.Stop() // idempotent
	if n.Load() < 3 {
		t.Fatalf("beacon fired %d times, want >= 3", n.Load())
	}
	at := n.Load()
	time.Sleep(50 * time.Millisecond)
	if n.Load() != at {
		t.Fatal("beacon fired after Stop")
	}
}

func TestMovingAverageFirstSample(t *testing.T) {
	m := &MovingAverage{Alpha: 0.5}
	if got := m.Add(10); got != 10 {
		t.Fatalf("first sample average = %v, want 10", got)
	}
	if got := m.Add(0); got != 5 {
		t.Fatalf("second average = %v, want 5", got)
	}
	if m.Samples() != 2 {
		t.Fatalf("Samples = %d", m.Samples())
	}
}

func TestMovingAverageBounds(t *testing.T) {
	// Property: the average always stays within [min, max] of inputs.
	check := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		m := &MovingAverage{Alpha: 0.3}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			// Constrain inputs to a sane range.
			if x != x || x > 1e12 || x < -1e12 {
				x = 0
			}
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			v := m.Add(x)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMovingAverageDefaultAlpha(t *testing.T) {
	m := &MovingAverage{} // Alpha 0 -> default
	m.Add(10)
	v := m.Add(20)
	if v <= 10 || v >= 20 {
		t.Fatalf("average with default alpha = %v", v)
	}
	if m.Value() != v {
		t.Fatal("Value mismatch")
	}
}

// TestReadsDoNotConsumeExpiry is the regression test for the stolen
// front-end restart: a status poller calling Len/Snapshot/Get (or a
// failed Touch) around the moment an entry expires must not eat the
// expiry event — Expired() is the single consumer, and the policy
// loop acting on it must still see the key.
func TestReadsDoNotConsumeExpiry(t *testing.T) {
	fc := &fakeClock{now: time.Unix(0, 0)}
	tb := NewTable[string](time.Second, fc.Now)
	tb.Put("fe0", "heartbeat")
	fc.Advance(2 * time.Second)

	// Observer reads: the entry is invisible...
	if tb.Len() != 0 {
		t.Fatalf("Len = %d, want 0 after expiry", tb.Len())
	}
	if snap := tb.Snapshot(); len(snap) != 0 {
		t.Fatalf("Snapshot = %v, want empty", snap)
	}
	if _, ok := tb.Get("fe0"); ok {
		t.Fatal("Get returned an expired entry")
	}
	if tb.Touch("fe0") {
		t.Fatal("Touch refreshed an expired entry")
	}
	// ...but the expiry event is still deliverable exactly once.
	if gone := tb.Expired(); len(gone) != 1 || gone[0] != "fe0" {
		t.Fatalf("Expired = %v, want [fe0] (reads must not consume expiry)", gone)
	}
	if gone := tb.Expired(); len(gone) != 0 {
		t.Fatalf("second Expired = %v, want empty", gone)
	}
}
