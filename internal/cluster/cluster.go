// Package cluster models the network of workstations (NOW) that hosts
// an SNS instance (paper §1.2, §2.1): a set of nodes — dedicated plus
// an overflow pool of non-dedicated machines (§2.2.3) — on which
// logical processes are placed, started, killed, and restarted.
//
// Processes run as goroutines whose lifetime is bound to their node:
// killing a node cancels every process on it and detaches its SAN
// endpoints, exactly the failure unit the paper's fault-tolerance
// mechanisms must mask.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/san"
)

// Process is a logical SNS component (front end, worker stub, manager,
// cache node, monitor). Run should block until ctx is cancelled or the
// process fails. A non-nil error marks an abnormal exit (crash).
type Process interface {
	// ID returns the process name, unique on its node.
	ID() string
	// Run executes the process until ctx is done.
	Run(ctx context.Context) error
}

// ProcessFunc adapts a function to the Process interface.
type ProcessFunc struct {
	Name string
	Fn   func(ctx context.Context) error
}

// ID implements Process.
func (p ProcessFunc) ID() string { return p.Name }

// Run implements Process.
func (p ProcessFunc) Run(ctx context.Context) error { return p.Fn(ctx) }

// ExitInfo describes a finished process.
type ExitInfo struct {
	Node string
	Proc string
	Err  error     // nil for clean exit
	At   time.Time // when the process exited
}

// Handle tracks a spawned process.
type Handle struct {
	Node string
	Proc string

	cancel context.CancelFunc
	done   chan struct{}
	mu     sync.Mutex
	err    error
}

// Stop cancels the process and waits for it to exit.
func (h *Handle) Stop() {
	h.cancel()
	<-h.done
}

// Kill cancels the process without waiting (crash-style).
func (h *Handle) Kill() { h.cancel() }

// Wait blocks until the process exits and returns its error.
func (h *Handle) Wait() error {
	<-h.done
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// Done returns a channel closed when the process has exited.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Node describes one workstation.
type Node struct {
	ID       string
	Overflow bool // member of the overflow pool, not dedicated (§2.2.3)
	Alive    bool
	Procs    []string // process IDs currently placed here
}

// Errors returned by cluster operations.
var (
	ErrNoSuchNode = errors.New("cluster: no such node")
	ErrNodeDown   = errors.New("cluster: node is down")
	ErrDuplicate  = errors.New("cluster: duplicate process id on node")
	ErrStopped    = errors.New("cluster: cluster is stopped")
)

// Cluster is a collection of nodes attached to one SAN.
type Cluster struct {
	net *san.Network

	mu        sync.Mutex
	nodes     map[string]*nodeState
	order     []string // insertion order, for deterministic placement
	exitCh    chan ExitInfo
	observers map[int]func(ExitInfo)
	nextObs   int
	stopping  bool // StopAll called: no further spawns
	wg        sync.WaitGroup
}

type nodeState struct {
	id       string
	overflow bool
	alive    bool
	procs    map[string]*Handle
}

// New creates a cluster over the given network.
func New(net *san.Network) *Cluster {
	return &Cluster{
		net:    net,
		nodes:  make(map[string]*nodeState),
		exitCh: make(chan ExitInfo, 1024),
	}
}

// Network returns the SAN the cluster is attached to.
func (c *Cluster) Network() *san.Network { return c.net }

// Exits returns a channel of process exit notifications. Consumers
// (e.g. the manager's process-peer logic in tests) may read it; it is
// buffered and drops are impossible under normal test loads because
// notify uses a blocking send guarded by the buffer size.
func (c *Cluster) Exits() <-chan ExitInfo { return c.exitCh }

// OnExit registers an observer invoked for every process exit (clean
// or crash), independent of the Exits channel, so multiple consumers
// — a chaos harness recording restart latencies, a supervisor wiring
// respawn policies — can watch the same cluster without stealing each
// other's notifications. Observers run synchronously on the exiting
// process's goroutine and must be fast and non-blocking. The returned
// function removes the observer.
func (c *Cluster) OnExit(fn func(ExitInfo)) (remove func()) {
	c.mu.Lock()
	if c.observers == nil {
		c.observers = make(map[int]func(ExitInfo))
	}
	id := c.nextObs
	c.nextObs++
	c.observers[id] = fn
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		delete(c.observers, id)
		c.mu.Unlock()
	}
}

// notifyExit fans an exit out to the channel and all observers.
func (c *Cluster) notifyExit(info ExitInfo) {
	select {
	case c.exitCh <- info:
	default: // never stall a dying process on a full channel
	}
	c.mu.Lock()
	obs := make([]func(ExitInfo), 0, len(c.observers))
	for _, fn := range c.observers {
		obs = append(obs, fn)
	}
	c.mu.Unlock()
	for _, fn := range obs {
		fn(info)
	}
}

// AddNode registers a workstation. Overflow nodes belong to the
// overflow pool and are only used when dedicated capacity is
// exhausted.
func (c *Cluster) AddNode(id string, overflow bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[id]; ok {
		return
	}
	c.nodes[id] = &nodeState{id: id, overflow: overflow, alive: true, procs: make(map[string]*Handle)}
	c.order = append(c.order, id)
}

// Nodes returns a snapshot of all nodes in insertion order.
func (c *Cluster) Nodes() []Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Node, 0, len(c.order))
	for _, id := range c.order {
		ns := c.nodes[id]
		procs := make([]string, 0, len(ns.procs))
		for p := range ns.procs {
			procs = append(procs, p)
		}
		sort.Strings(procs)
		out = append(out, Node{ID: ns.id, Overflow: ns.overflow, Alive: ns.alive, Procs: procs})
	}
	return out
}

// Spawn places and starts a process on the named node.
func (c *Cluster) Spawn(node string, p Process) (*Handle, error) {
	c.mu.Lock()
	if c.stopping {
		// Refusing late spawns (e.g. a manager replacing a crashed
		// worker while the whole system shuts down) keeps StopAll's
		// wait finite: a process spawned after the kill snapshot
		// would never be cancelled.
		c.mu.Unlock()
		return nil, ErrStopped
	}
	ns, ok := c.nodes[node]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchNode, node)
	}
	if !ns.alive {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNodeDown, node)
	}
	if _, dup := ns.procs[p.ID()]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %s/%s", ErrDuplicate, node, p.ID())
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &Handle{Node: node, Proc: p.ID(), cancel: cancel, done: make(chan struct{})}
	ns.procs[p.ID()] = h
	c.wg.Add(1)
	c.mu.Unlock()

	go func() {
		defer c.wg.Done()
		err := runRecovered(ctx, p)
		h.mu.Lock()
		h.err = err
		h.mu.Unlock()
		c.mu.Lock()
		if cur, ok := c.nodes[node]; ok {
			if cur.procs[p.ID()] == h {
				delete(cur.procs, p.ID())
			}
		}
		c.mu.Unlock()
		close(h.done)
		c.notifyExit(ExitInfo{Node: node, Proc: p.ID(), Err: err, At: time.Now()})
	}()
	return h, nil
}

// runRecovered converts a process panic into an error exit, so a buggy
// worker "crashes" without taking the whole test binary down — the
// paper's claim that worker code may crash freely (§2.2.5).
func runRecovered(ctx context.Context, p Process) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: process %s panicked: %v", p.ID(), r)
		}
	}()
	return p.Run(ctx)
}

// KillNode crashes a workstation: every process on it is cancelled and
// all its SAN endpoints are dropped. Spawning on it fails until
// ReviveNode.
func (c *Cluster) KillNode(id string) error {
	c.mu.Lock()
	ns, ok := c.nodes[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSuchNode, id)
	}
	ns.alive = false
	handles := make([]*Handle, 0, len(ns.procs))
	for _, h := range ns.procs {
		handles = append(handles, h)
	}
	c.mu.Unlock()

	c.net.DropNode(id)
	for _, h := range handles {
		h.Kill()
	}
	for _, h := range handles {
		<-h.done
	}
	return nil
}

// ReviveNode brings a killed workstation back (empty of processes).
func (c *Cluster) ReviveNode(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ns, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, id)
	}
	ns.alive = true
	return nil
}

// KillProcess crashes a single process by name.
func (c *Cluster) KillProcess(node, proc string) error {
	c.mu.Lock()
	ns, ok := c.nodes[node]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSuchNode, node)
	}
	h, ok := ns.procs[proc]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: no process %s on %s", proc, node)
	}
	h.Kill()
	<-h.done
	return nil
}

// PlacementFilter selects candidate nodes for Place.
type PlacementFilter func(Node) bool

// Place returns the alive node with the fewest processes matching the
// filter, preferring dedicated nodes over overflow nodes; overflow
// nodes are considered only if includeOverflow is set. It returns ""
// if no node qualifies. This is the manager's spawn-placement policy
// (§3.1.2): least-loaded dedicated node first, overflow pool as the
// burst absorber.
func (c *Cluster) Place(includeOverflow bool, filter PlacementFilter) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	best := ""
	bestLoad := int(^uint(0) >> 1)
	bestOverflow := true
	for _, id := range c.order {
		ns := c.nodes[id]
		if !ns.alive || (ns.overflow && !includeOverflow) {
			continue
		}
		if filter != nil && !filter(snapshotNode(ns)) {
			continue
		}
		load := len(ns.procs)
		// Dedicated nodes strictly dominate overflow nodes.
		if best == "" || (bestOverflow && !ns.overflow) ||
			(bestOverflow == ns.overflow && load < bestLoad) {
			best, bestLoad, bestOverflow = id, load, ns.overflow
		}
	}
	return best
}

func snapshotNode(ns *nodeState) Node {
	procs := make([]string, 0, len(ns.procs))
	for p := range ns.procs {
		procs = append(procs, p)
	}
	return Node{ID: ns.id, Overflow: ns.overflow, Alive: ns.alive, Procs: procs}
}

// StopAll cancels every process on every node and waits for all of
// them to exit. Used for orderly shutdown of a whole system; the
// cluster accepts no further spawns afterwards.
func (c *Cluster) StopAll() {
	c.mu.Lock()
	c.stopping = true
	var handles []*Handle
	for _, ns := range c.nodes {
		for _, h := range ns.procs {
			handles = append(handles, h)
		}
	}
	c.mu.Unlock()
	for _, h := range handles {
		h.Kill()
	}
	c.wg.Wait()
}
