package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/san"
)

func newTestCluster() *Cluster {
	return New(san.NewNetwork(1))
}

func blockUntilCancel(name string) ProcessFunc {
	return ProcessFunc{Name: name, Fn: func(ctx context.Context) error {
		<-ctx.Done()
		return nil
	}}
}

func TestSpawnAndStop(t *testing.T) {
	c := newTestCluster()
	c.AddNode("n1", false)
	var started atomic.Bool
	h, err := c.Spawn("n1", ProcessFunc{Name: "p", Fn: func(ctx context.Context) error {
		started.Store(true)
		<-ctx.Done()
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return started.Load() })
	h.Stop()
	if err := h.Wait(); err != nil {
		t.Fatalf("clean exit returned error: %v", err)
	}
	nodes := c.Nodes()
	if len(nodes[0].Procs) != 0 {
		t.Fatalf("process still registered after exit: %v", nodes[0].Procs)
	}
}

func TestSpawnErrors(t *testing.T) {
	c := newTestCluster()
	if _, err := c.Spawn("ghost", blockUntilCancel("p")); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("err = %v, want ErrNoSuchNode", err)
	}
	c.AddNode("n1", false)
	h, err := c.Spawn("n1", blockUntilCancel("p"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Spawn("n1", blockUntilCancel("p")); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	h.Stop()
	if err := c.KillNode("n1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Spawn("n1", blockUntilCancel("q")); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
}

func TestKillNodeCancelsProcessesAndDropsEndpoints(t *testing.T) {
	net := san.NewNetwork(1)
	c := New(net)
	c.AddNode("n1", false)
	c.AddNode("n2", false)
	ep := net.Endpoint(san.Addr{Node: "n1", Proc: "svc"}, 8)
	_ = ep
	var cancelled atomic.Bool
	_, err := c.Spawn("n1", ProcessFunc{Name: "svc", Fn: func(ctx context.Context) error {
		<-ctx.Done()
		cancelled.Store(true)
		return ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode("n1"); err != nil {
		t.Fatal(err)
	}
	if !cancelled.Load() {
		t.Fatal("process context not cancelled on node kill")
	}
	if net.Lookup(san.Addr{Node: "n1", Proc: "svc"}) {
		t.Fatal("SAN endpoint survived node kill")
	}
	if err := c.ReviveNode("n1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Spawn("n1", blockUntilCancel("svc2")); err != nil {
		t.Fatalf("spawn after revive: %v", err)
	}
	c.StopAll()
}

func TestPanicIsolation(t *testing.T) {
	c := newTestCluster()
	c.AddNode("n1", false)
	h, err := c.Spawn("n1", ProcessFunc{Name: "buggy", Fn: func(ctx context.Context) error {
		panic("pathological input")
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestExitNotifications(t *testing.T) {
	c := newTestCluster()
	c.AddNode("n1", false)
	wantErr := errors.New("boom")
	h, err := c.Spawn("n1", ProcessFunc{Name: "flaky", Fn: func(ctx context.Context) error {
		return wantErr
	}})
	if err != nil {
		t.Fatal(err)
	}
	_ = h.Wait()
	select {
	case exit := <-c.Exits():
		if exit.Node != "n1" || exit.Proc != "flaky" || !errors.Is(exit.Err, wantErr) {
			t.Fatalf("bad exit info: %+v", exit)
		}
	case <-time.After(time.Second):
		t.Fatal("no exit notification")
	}
}

func TestKillProcess(t *testing.T) {
	c := newTestCluster()
	c.AddNode("n1", false)
	if _, err := c.Spawn("n1", blockUntilCancel("w0")); err != nil {
		t.Fatal(err)
	}
	if err := c.KillProcess("n1", "w0"); err != nil {
		t.Fatal(err)
	}
	if err := c.KillProcess("n1", "w0"); err == nil {
		t.Fatal("expected error killing dead process")
	}
	if err := c.KillProcess("ghost", "w0"); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestPlacePrefersDedicatedAndLeastLoaded(t *testing.T) {
	c := newTestCluster()
	c.AddNode("d1", false)
	c.AddNode("d2", false)
	c.AddNode("o1", true)

	// Load d1 with two processes.
	for _, p := range []string{"a", "b"} {
		if _, err := c.Spawn("d1", blockUntilCancel(p)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Place(false, nil); got != "d2" {
		t.Fatalf("Place = %q, want d2 (least loaded dedicated)", got)
	}
	// Fill both dedicated nodes equally; overflow must still lose.
	for _, p := range []string{"a", "b"} {
		if _, err := c.Spawn("d2", blockUntilCancel(p)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Place(true, nil); got == "o1" {
		t.Fatal("Place chose overflow while dedicated nodes available")
	}
	// Excluding overflow with all dedicated dead yields "".
	if err := c.KillNode("d1"); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode("d2"); err != nil {
		t.Fatal(err)
	}
	if got := c.Place(false, nil); got != "" {
		t.Fatalf("Place = %q, want empty with no dedicated nodes", got)
	}
	if got := c.Place(true, nil); got != "o1" {
		t.Fatalf("Place = %q, want o1 (overflow recruitment)", got)
	}
	c.StopAll()
}

func TestPlaceFilter(t *testing.T) {
	c := newTestCluster()
	c.AddNode("n1", false)
	c.AddNode("n2", false)
	got := c.Place(false, func(n Node) bool { return n.ID != "n1" })
	if got != "n2" {
		t.Fatalf("Place with filter = %q, want n2", got)
	}
}

func TestStopAllWaits(t *testing.T) {
	c := newTestCluster()
	c.AddNode("n1", false)
	var running atomic.Int32
	for i := 0; i < 8; i++ {
		name := string(rune('a' + i))
		if _, err := c.Spawn("n1", ProcessFunc{Name: name, Fn: func(ctx context.Context) error {
			running.Add(1)
			defer running.Add(-1)
			<-ctx.Done()
			return nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return running.Load() == 8 })
	c.StopAll()
	if running.Load() != 0 {
		t.Fatalf("%d processes still running after StopAll", running.Load())
	}
}

func TestNodesSnapshot(t *testing.T) {
	c := newTestCluster()
	c.AddNode("n1", false)
	c.AddNode("o1", true)
	c.AddNode("n1", false) // duplicate add is a no-op
	nodes := c.Nodes()
	if len(nodes) != 2 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	if nodes[0].ID != "n1" || nodes[0].Overflow || !nodes[0].Alive {
		t.Fatalf("bad node snapshot: %+v", nodes[0])
	}
	if nodes[1].ID != "o1" || !nodes[1].Overflow {
		t.Fatalf("bad overflow node: %+v", nodes[1])
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not met in time")
}

func TestOnExitObservers(t *testing.T) {
	c := newTestCluster()
	c.AddNode("n1", false)
	var clean, crashed atomic.Int32
	var last atomic.Value
	remove := c.OnExit(func(info ExitInfo) {
		if info.Err == nil {
			clean.Add(1)
		} else {
			crashed.Add(1)
		}
		last.Store(info)
	})

	h, err := c.Spawn("n1", blockUntilCancel("p1"))
	if err != nil {
		t.Fatal(err)
	}
	h.Stop()
	waitFor(t, func() bool { return clean.Load() == 1 })
	info := last.Load().(ExitInfo)
	if info.Node != "n1" || info.Proc != "p1" || info.At.IsZero() {
		t.Fatalf("exit info = %+v", info)
	}

	// A crashing process reports its error to observers too.
	h2, err := c.Spawn("n1", ProcessFunc{Name: "p2", Fn: func(ctx context.Context) error {
		return errors.New("boom")
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-h2.Done()
	waitFor(t, func() bool { return crashed.Load() == 1 })

	// Removed observers stop firing; the Exits channel still works.
	remove()
	h3, _ := c.Spawn("n1", blockUntilCancel("p3"))
	h3.Stop()
	select {
	case info := <-c.Exits():
		_ = info
	case <-time.After(2 * time.Second):
		t.Fatal("Exits channel starved")
	}
	if clean.Load() != 1 {
		t.Fatalf("removed observer fired: clean=%d", clean.Load())
	}
}

func TestSpawnAfterStopAllFails(t *testing.T) {
	c := newTestCluster()
	c.AddNode("n1", false)
	h, err := c.Spawn("n1", blockUntilCancel("p"))
	if err != nil {
		t.Fatal(err)
	}
	_ = h
	c.StopAll()
	// The race this guards: a manager replacing a crashed worker
	// concurrently with system shutdown must not leak an unkillable
	// process past StopAll's wait.
	if _, err := c.Spawn("n1", blockUntilCancel("late")); !errors.Is(err, ErrStopped) {
		t.Fatalf("late spawn err = %v, want ErrStopped", err)
	}
}
