package san

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// countingCodec is a minimal wire codec for string bodies (nil encodes
// to empty) that counts every encode and decode call — the instrument
// behind the encode-once fan-out assertions.
type countingCodec struct {
	encodes atomic.Int64
	decodes atomic.Int64
}

var errBadBody = errors.New("countingCodec: body is not a string")

func (c *countingCodec) AppendBody(dst []byte, kind string, body any) ([]byte, error) {
	c.encodes.Add(1)
	if body == nil {
		return dst, nil
	}
	s, ok := body.(string)
	if !ok {
		return nil, errBadBody
	}
	return append(dst, s...), nil
}

func (c *countingCodec) DecodeBody(kind string, data []byte) (any, error) {
	c.decodes.Add(1)
	if len(data) == 0 {
		return nil, nil
	}
	return string(data), nil
}

func wireNet(t *testing.T) (*Network, *countingCodec) {
	t.Helper()
	c := &countingCodec{}
	n := NewNetwork(1, WithCodec(c))
	if !n.WireMode() {
		t.Fatal("WithCodec did not enable wire mode")
	}
	return n, c
}

// TestWireSendRoundTrip: a point-to-point send crosses the SAN as
// bytes and the receiver gets an equal, independent value.
func TestWireSendRoundTrip(t *testing.T) {
	n, c := wireNet(t)
	a := n.Endpoint(Addr{Node: "n1", Proc: "a"}, 4)
	b := n.Endpoint(Addr{Node: "n2", Proc: "b"}, 4)
	if err := a.Send(b.Addr(), "ping", "hello", 5); err != nil {
		t.Fatal(err)
	}
	msg := <-b.Inbox()
	if msg.Body != "hello" {
		t.Fatalf("body = %#v, want %q", msg.Body, "hello")
	}
	if msg.Size != 5 {
		t.Fatalf("size = %d, want the encoded length 5", msg.Size)
	}
	if c.encodes.Load() != 1 || c.decodes.Load() != 1 {
		t.Fatalf("encodes=%d decodes=%d, want 1/1", c.encodes.Load(), c.decodes.Load())
	}
	st := n.Stats()
	if st.WireEncodes != 1 || st.WireDecodes != 1 || st.WireErrors != 0 {
		t.Fatalf("wire stats = %+v", st)
	}
	if st.Bytes != 5 {
		t.Fatalf("bytes = %d, want actual wire bytes 5", st.Bytes)
	}
}

// TestWireMulticastEncodesOnce is the acceptance-criterion assertion:
// one Multicast encodes the body exactly once regardless of group
// size, and decodes once per actual delivery.
func TestWireMulticastEncodesOnce(t *testing.T) {
	n, c := wireNet(t)
	const members = 9
	src := n.Endpoint(Addr{Node: "s", Proc: "src"}, 4)
	src.Join("grp")
	var sinks []*Endpoint
	for i := 0; i < members; i++ {
		ep := n.Endpoint(Addr{Node: "m", Proc: fmt.Sprintf("p%d", i)}, 16)
		ep.Join("grp")
		sinks = append(sinks, ep)
	}
	if got := src.Multicast("grp", "beacon", "payload", 7); got != members {
		t.Fatalf("delivered %d, want %d", got, members)
	}
	if c.encodes.Load() != 1 {
		t.Fatalf("encodes = %d, want exactly 1 for the whole fanout", c.encodes.Load())
	}
	if c.decodes.Load() != members {
		t.Fatalf("decodes = %d, want one per delivery (%d)", c.decodes.Load(), members)
	}
	for _, ep := range sinks {
		msg := <-ep.Inbox()
		if msg.Body != "payload" {
			t.Fatalf("member got %#v", msg.Body)
		}
	}
	// A second fanout encodes once more — the count scales with calls,
	// not with group size.
	src.Multicast("grp", "beacon", "again", 5)
	if c.encodes.Load() != 2 {
		t.Fatalf("encodes after 2nd multicast = %d, want 2", c.encodes.Load())
	}
}

// TestWireMulticastLostDeliveriesNotDecoded: a datagram the network
// drops never reaches a decoder (receivers cannot parse packets they
// never saw).
func TestWireMulticastLostDeliveriesNotDecoded(t *testing.T) {
	n, c := wireNet(t)
	src := n.Endpoint(Addr{Node: "s", Proc: "src"}, 4)
	for i := 0; i < 4; i++ {
		ep := n.Endpoint(Addr{Node: "m", Proc: fmt.Sprintf("p%d", i)}, 16)
		ep.Join("grp")
	}
	n.SetLoss(0, 1.0) // every multicast delivery is lost
	if got := src.Multicast("grp", "beacon", "x", 1); got != 0 {
		t.Fatalf("delivered %d under total loss", got)
	}
	if c.encodes.Load() != 1 {
		t.Fatalf("encodes = %d, want 1 (sender still pays serialization)", c.encodes.Load())
	}
	if c.decodes.Load() != 0 {
		t.Fatalf("decodes = %d, want 0 for all-lost fanout", c.decodes.Load())
	}
}

// TestWireSendLostDeliveriesNotDecoded: the point-to-point twin of
// the multicast assertion — a dropped datagram still costs the sender
// its encode, but is never decoded.
func TestWireSendLostDeliveriesNotDecoded(t *testing.T) {
	n, c := wireNet(t)
	a := n.Endpoint(Addr{Node: "n1", Proc: "a"}, 4)
	b := n.Endpoint(Addr{Node: "n2", Proc: "b"}, 16)
	n.SetLoss(1.0, 0) // every p2p delivery is lost
	const sends = 10
	for i := 0; i < sends; i++ {
		if err := a.Send(b.Addr(), "ping", "x", 1); err != nil {
			t.Fatal(err)
		}
	}
	if c.encodes.Load() != sends {
		t.Fatalf("encodes = %d, want %d (sender pays serialization before the drop)", c.encodes.Load(), sends)
	}
	if c.decodes.Load() != 0 {
		t.Fatalf("decodes = %d, want 0 for all-lost sends", c.decodes.Load())
	}
	if st := n.Stats(); st.Dropped != sends || st.WireDecodes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestWireEncodeErrors: an unencodable body fails the send with
// ErrCodec, reaches nobody, and is counted.
func TestWireEncodeErrors(t *testing.T) {
	n, _ := wireNet(t)
	a := n.Endpoint(Addr{Node: "n1", Proc: "a"}, 4)
	b := n.Endpoint(Addr{Node: "n1", Proc: "b"}, 4)
	b.Join("grp")
	if err := a.Send(b.Addr(), "k", 42, 8); !errors.Is(err, ErrCodec) {
		t.Fatalf("send err = %v, want ErrCodec", err)
	}
	if got := a.Multicast("grp", "k", 42, 8); got != 0 {
		t.Fatalf("multicast delivered %d with unencodable body", got)
	}
	st := n.Stats()
	if st.WireErrors != 2 {
		t.Fatalf("wire errors = %d, want 2", st.WireErrors)
	}
	if st.Sent != 0 || st.McastSent != 0 {
		t.Fatalf("unencodable body leaked into delivery stats: %+v", st)
	}
	select {
	case msg := <-b.Inbox():
		t.Fatalf("receiver got %#v", msg)
	default:
	}
}

// TestWireCallRoundTrip: the request/response convention works
// unchanged over the byte path (Call and Respond both transit the
// codec).
func TestWireCallRoundTrip(t *testing.T) {
	n, c := wireNet(t)
	client := n.Endpoint(Addr{Node: "n1", Proc: "client"}, 16)
	server := n.Endpoint(Addr{Node: "n2", Proc: "server"}, 16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for msg := range server.Inbox() {
			if msg.Kind == "add" {
				server.Respond(msg, "sum", msg.Body.(string)+"!", 8)
				return
			}
		}
	}()
	go func() {
		for msg := range client.Inbox() {
			client.DeliverReply(msg)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := client.Call(ctx, server.Addr(), "add", "41", 2)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Body != "41!" {
		t.Fatalf("reply body = %#v", resp.Body)
	}
	<-done
	if c.encodes.Load() != 2 || c.decodes.Load() != 2 {
		t.Fatalf("encodes=%d decodes=%d, want 2/2 (request + reply)", c.encodes.Load(), c.decodes.Load())
	}
}

// TestWireBufferReuseIsSafe: pooled encode buffers never leak one
// message's bytes into another's body, even under concurrency.
func TestWireBufferReuseIsSafe(t *testing.T) {
	n, _ := wireNet(t)
	const senders, msgs = 4, 200
	sinks := make([]*Endpoint, senders)
	for i := range sinks {
		sinks[i] = n.Endpoint(Addr{Node: "sink", Proc: fmt.Sprintf("d%d", i)}, msgs)
	}
	done := make(chan error, senders)
	for i := 0; i < senders; i++ {
		go func(i int) {
			src := n.Endpoint(Addr{Node: "src", Proc: fmt.Sprintf("s%d", i)}, 4)
			for j := 0; j < msgs; j++ {
				if err := src.Send(sinks[i].Addr(), "d", fmt.Sprintf("s%d-m%d", i, j), 0); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < senders; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i, sink := range sinks {
		for j := 0; j < msgs; j++ {
			msg := <-sink.Inbox()
			want := fmt.Sprintf("s%d-m%d", i, j)
			if msg.Body != want {
				t.Fatalf("sink %d msg %d: body %#v, want %q", i, j, msg.Body, want)
			}
		}
	}
}
