package san

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkSANSendParallel measures point-to-point throughput with many
// concurrent sender/receiver pairs — the hot path that serialized on
// the network's RWMutex plus the shared rng mutex before the snapshot
// rework. Distinct destination pairs keep the measurement on the
// network layer rather than a single inbox.
func BenchmarkSANSendParallel(b *testing.B) {
	n := NewNetwork(1)
	// Nonzero loss keeps the rng on the hot path, as in impaired runs.
	n.SetLoss(0.01, 0)
	var next atomic.Int64
	b.SetBytes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := fmt.Sprint(next.Add(1))
		src := n.Endpoint(Addr{Node: "senders", Proc: id}, 8)
		dst := n.Endpoint(Addr{Node: "sinks", Proc: id}, 4096)
		go func() {
			for range dst.Inbox() {
			}
		}()
		for pb.Next() {
			if err := src.Send(dst.Addr(), "d", nil, 1024); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSANSendParallelSharedSink is the adversarial variant: every
// sender targets one inbox, so the receiving endpoint's channel is the
// shared resource.
func BenchmarkSANSendParallelSharedSink(b *testing.B) {
	n := NewNetwork(1)
	dst := n.Endpoint(Addr{Node: "sink", Proc: "dst"}, 4096)
	go func() {
		for range dst.Inbox() {
		}
	}()
	n.SetLoss(0.01, 0)
	var next atomic.Int64
	b.SetBytes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		src := n.Endpoint(Addr{Node: "senders", Proc: fmt.Sprint(next.Add(1))}, 8)
		for pb.Next() {
			if err := src.Send(dst.Addr(), "d", nil, 1024); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSANMulticastParallel measures concurrent multicast fanout —
// manager beacons and monitor reports all share this path.
func BenchmarkSANMulticastParallel(b *testing.B) {
	n := NewNetwork(1)
	const members = 16
	for i := 0; i < members; i++ {
		ep := n.Endpoint(Addr{Node: "m", Proc: string(rune('a' + i))}, 4096)
		ep.Join("grp")
		go func() {
			for range ep.Inbox() {
			}
		}()
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		src := n.Endpoint(Addr{Node: "senders", Proc: fmt.Sprint(next.Add(1))}, 8)
		for pb.Next() {
			src.Multicast("grp", "beacon", nil, 128)
		}
	})
}
