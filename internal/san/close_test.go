package san

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestNetworkClose: the graceful-shutdown regression test. Close must
// (a) close every endpoint so receive loops drain and exit, (b) fail
// pending Calls instead of stranding them, (c) make subsequent sends
// and multicasts no-ops with a deterministic error, and (d) drop — not
// deliver — latency-delayed messages still in flight, so a transport
// bridge tearing a network down cannot leak goroutines or push into
// freed endpoints.
func TestNetworkClose(t *testing.T) {
	n := NewNetwork(1)
	a := n.Endpoint(Addr{Node: "n0", Proc: "a"}, 8)
	b := n.Endpoint(Addr{Node: "n0", Proc: "b"}, 8)
	b.Join("g")

	if err := a.Send(b.Addr(), "k", "hello", 8); err != nil {
		t.Fatal(err)
	}

	// A call pending when the network closes must fail, not hang.
	callErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, err := a.Call(ctx, b.Addr(), "req", nil, 8)
		callErr <- err
	}()
	// Wait until the request is actually in b's inbox (send happened).
	deadline := time.Now().Add(2 * time.Second)
	for n.Stats().Sent < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	n.Close()
	n.Close() // idempotent

	if err := <-callErr; !errors.Is(err, ErrClosed) {
		t.Fatalf("pending call after Close: got %v, want ErrClosed", err)
	}
	if err := a.Send(b.Addr(), "k", "late", 8); !errors.Is(err, ErrClosed) && !errors.Is(err, ErrNetworkClosed) {
		t.Fatalf("send after Close: got %v, want ErrClosed/ErrNetworkClosed", err)
	}
	if got := a.Multicast("g", "k", "late", 8); got != 0 {
		t.Fatalf("multicast after Close delivered %d", got)
	}
	if !n.Closed() {
		t.Fatal("Closed() = false after Close")
	}

	// Buffered messages drain, then the channel reports closed.
	msg, ok := <-b.Inbox()
	if !ok || msg.Body != "hello" {
		t.Fatalf("pre-close message lost: ok=%v body=%v", ok, msg.Body)
	}
	// The pending call request is also still drainable; after the
	// buffer empties the inbox must report closed.
	for ok {
		_, ok = <-b.Inbox()
	}

	// Registering on a closed network yields a dead endpoint.
	late := n.Endpoint(Addr{Node: "n0", Proc: "late"}, 8)
	if _, open := <-late.Inbox(); open {
		t.Fatal("endpoint registered after Close has an open inbox")
	}
	if n.Lookup(Addr{Node: "n0", Proc: "late"}) {
		t.Fatal("closed network still registers addresses")
	}
}

// TestNetworkCloseDropsDelayedDeliveries: messages sitting in latency
// timers when the network closes are dropped deterministically, and
// the timer goroutines do not outlive the drop.
func TestNetworkCloseDropsDelayedDeliveries(t *testing.T) {
	n := NewNetwork(1)
	n.SetLatency(func() time.Duration { return 20 * time.Millisecond })
	a := n.Endpoint(Addr{Node: "n0", Proc: "a"}, 8)
	b := n.Endpoint(Addr{Node: "n0", Proc: "b"}, 8)
	for i := 0; i < 16; i++ {
		if err := a.Send(b.Addr(), "k", i, 8); err != nil {
			t.Fatal(err)
		}
	}
	n.Close()
	// Drain whatever raced in before the close; nothing may arrive
	// after the inbox reports closed.
	for range b.Inbox() {
	}
	time.Sleep(50 * time.Millisecond) // let the delayed pushes fire into the closed endpoint
	base := runtime.NumGoroutine()
	time.Sleep(10 * time.Millisecond)
	if g := runtime.NumGoroutine(); g > base+2 {
		t.Fatalf("goroutines still growing after Close: %d -> %d", base, g)
	}
}
