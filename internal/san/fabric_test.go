package san

import (
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeFabric records what the network hands it and loops frames into
// a second network, standing in for the socket bridge.
type fakeFabric struct {
	peer     *Network
	unicasts int
	mcasts   int
	ups      []Addr
	downs    []Addr
	noRoute  bool // report delivery failure
}

func (f *fakeFabric) Unicast(from, to Addr, kind string, callID uint64, reply bool, trace obs.TraceID, wire []byte, lease *Lease) bool {
	f.unicasts++
	if f.noRoute {
		return false
	}
	return f.peer.InjectUnicast(from, to, kind, callID, reply, trace, wire, lease)
}

func (f *fakeFabric) Multicast(from Addr, group, kind string, wire []byte) {
	f.mcasts++
	f.peer.InjectMulticast(from, group, kind, wire, nil)
}

func (f *fakeFabric) EndpointUp(a Addr)   { f.ups = append(f.ups, a) }
func (f *fakeFabric) EndpointDown(a Addr) { f.downs = append(f.downs, a) }

// TestFabricSeam: with a fabric installed, sends to non-local
// addresses serialize once and re-enter the peer network through the
// inject APIs; local behavior is untouched.
func TestFabricSeam(t *testing.T) {
	local, _ := wireNet(t)
	remote := NewNetwork(2, WithCodec(&countingCodec{}))
	fab := &fakeFabric{peer: remote}
	local.SetFabric(fab)

	src := local.Endpoint(Addr{Node: "a-n0", Proc: "src"}, 8)
	dst := remote.Endpoint(Addr{Node: "b-n0", Proc: "dst"}, 8)

	// Unicast to a remote-only address goes through the fabric.
	if err := src.Send(dst.Addr(), "k", "payload", 7); err != nil {
		t.Fatalf("remote send: %v", err)
	}
	if fab.unicasts != 1 {
		t.Fatalf("fabric saw %d unicasts, want 1", fab.unicasts)
	}
	select {
	case msg := <-dst.Inbox():
		if msg.Body != "payload" {
			t.Fatalf("remote delivery body: %#v", msg.Body)
		}
		if msg.From != src.Addr() || msg.To != dst.Addr() {
			t.Fatalf("remote delivery addressing: %+v", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("remote delivery never arrived")
	}
	if st := remote.Stats(); st.Sent != 1 || st.WireDecodes != 1 || st.WireErrors != 0 {
		t.Fatalf("remote stats: %+v", st)
	}

	// A send the fabric cannot place counts as dropped AND surfaces
	// ErrUnknownAddr to the sender — the same answer a purely local
	// network gives for an unbound address, now observable across
	// processes.
	fab.noRoute = true
	before := local.Stats().Dropped
	if err := src.Send(Addr{Node: "nowhere", Proc: "nobody"}, "k", "y", 1); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("unroutable send: err=%v, want ErrUnknownAddr", err)
	}
	if got := local.Stats().Dropped; got != before+1 {
		t.Fatalf("dropped = %d, want %d", got, before+1)
	}
	fab.noRoute = false

	// Multicast mirrors to the fabric (encode-once), and the peer
	// fans out to its own members.
	w1 := remote.Endpoint(Addr{Node: "b-n1", Proc: "w1"}, 8)
	w1.Join("grp")
	src.Multicast("grp", "k", "mbody", 5)
	if fab.mcasts != 1 {
		t.Fatalf("fabric saw %d multicasts, want 1", fab.mcasts)
	}
	select {
	case msg := <-w1.Inbox():
		if msg.Group != "grp" || msg.Body != "mbody" {
			t.Fatalf("remote multicast delivery: %+v", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("remote multicast never arrived")
	}

	// Inject to an address nobody holds reads as a dropped datagram.
	if remote.InjectUnicast(src.Addr(), Addr{Node: "x", Proc: "y"}, "k", 0, false, 0, nil, nil) {
		t.Fatal("inject to unbound address claimed delivery")
	}

	// A reply injection routes back into a pending Call: callID and
	// the reply flag survive the fabric hop.
	if !remote.InjectUnicast(src.Addr(), dst.Addr(), "req", 42, false, 0, []byte("q"), nil) {
		t.Fatal("request injection failed")
	}
	req := <-dst.Inbox()
	if req.CallID != 42 || req.Reply {
		t.Fatalf("injected request fields: %+v", req)
	}

	// Detaching restores ErrUnknownAddr for non-local sends.
	local.SetFabric(nil)
	if err := src.Send(dst.Addr(), "k", "z", 1); err == nil {
		t.Fatal("send without fabric to remote address succeeded")
	}
}

// TestFabricSeesEndpointTable: SetFabric replays already-registered
// endpoints, later registrations/closures notify EndpointUp/Down, and
// a replaced endpoint (restart reclaiming its name) never invalidates
// its successor's route.
func TestFabricSeesEndpointTable(t *testing.T) {
	n, _ := wireNet(t)
	pre := n.Endpoint(Addr{Node: "n0", Proc: "pre"}, 8)
	fab := &fakeFabric{peer: NewNetwork(9, WithCodec(&countingCodec{}))}
	n.SetFabric(fab)
	if len(fab.ups) != 1 || fab.ups[0] != pre.Addr() {
		t.Fatalf("replay ups = %v, want [%v]", fab.ups, pre.Addr())
	}

	ep := n.Endpoint(Addr{Node: "n0", Proc: "p"}, 8)
	if len(fab.ups) != 2 || fab.ups[1] != ep.Addr() {
		t.Fatalf("ups after registration = %v", fab.ups)
	}

	// Replacement: the old endpoint's Close must not tear down the
	// address the new one holds.
	ep2 := n.Endpoint(ep.Addr(), 8)
	if len(fab.downs) != 0 {
		t.Fatalf("replacement produced downs: %v", fab.downs)
	}
	if len(fab.ups) != 3 {
		t.Fatalf("replacement did not re-announce: %v", fab.ups)
	}
	ep2.Close()
	if len(fab.downs) != 1 || fab.downs[0] != ep2.Addr() {
		t.Fatalf("downs after close = %v", fab.downs)
	}
	n.Drop(pre.Addr())
	if len(fab.downs) != 2 || fab.downs[1] != pre.Addr() {
		t.Fatalf("downs after drop = %v", fab.downs)
	}
}

// TestSetFabricRequiresWireMode: installing a fabric on a passthrough
// network is a deployment bug and panics.
func TestSetFabricRequiresWireMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetFabric on a passthrough network did not panic")
		}
	}()
	NewNetwork(1).SetFabric(&fakeFabric{})
}

// TestInjectRespectsPartition: remote injections honor the receiving
// network's partition map, so a chaos partition isolates bridged
// traffic too.
func TestInjectRespectsPartition(t *testing.T) {
	n, _ := wireNet(t)
	dst := n.Endpoint(Addr{Node: "n0", Proc: "dst"}, 8)
	dst.Join("grp")
	n.Partition(map[string]int{"n0": 1}) // remote senders land in group 0

	from := Addr{Node: "other", Proc: "src"}
	if n.InjectUnicast(from, dst.Addr(), "k", 0, false, 0, []byte("p"), nil) {
		t.Fatal("unicast crossed a partition")
	}
	if got := n.InjectMulticast(from, "grp", "k", []byte("p"), nil); got != 0 {
		t.Fatalf("multicast crossed a partition to %d members", got)
	}
	n.Heal()
	if !n.InjectUnicast(from, dst.Addr(), "k", 0, false, 0, []byte("p"), nil) {
		t.Fatal("unicast failed after heal")
	}
	if got := n.InjectMulticast(from, "grp", "k", []byte("p"), nil); got != 1 {
		t.Fatalf("multicast reached %d members after heal, want 1", got)
	}
}

// TestDropRemovesEndpoint: Drop (process crash) detaches the address
// and group membership without goodbye traffic.
func TestDropRemovesEndpoint(t *testing.T) {
	n := NewNetwork(1)
	ep := n.Endpoint(Addr{Node: "n0", Proc: "p"}, 8)
	ep.Join("g")
	other := n.Endpoint(Addr{Node: "n0", Proc: "q"}, 8)
	n.Drop(ep.Addr())
	if n.Lookup(ep.Addr()) {
		t.Fatal("dropped endpoint still registered")
	}
	if got := other.Multicast("g", "k", nil, 8); got != 0 {
		t.Fatalf("dropped endpoint still received %d multicasts", got)
	}
	if _, open := <-ep.Inbox(); open {
		t.Fatal("dropped endpoint inbox still open")
	}
}
