package san

// Lease: epoch-pooled, refcounted receive/encode buffers — the
// ownership token of the zero-copy data plane. In view mode the wire
// bytes a message body aliases are backed by a Lease; the buffer
// returns to the pool only after the last holder releases, so a
// decoded []byte view can never be recycled out from under a live
// reader.
//
// The contract is deliberately one-sided: Release is a PERFORMANCE
// obligation, never a safety one. A consumer that forgets to release
// merely costs the pool a miss (the garbage collector reclaims the
// buffer once the views die); corruption is only possible by the
// opposite mistake — releasing while still reading the bytes, or
// retaining a view past one's own release. Long-lived holders (the
// vcache store, anything that outlives the handling of one message)
// must copy-on-retain: clone the bytes they keep, then release.

import (
	"sync"
	"sync/atomic"
)

// maxPooledLease bounds the lease buffers kept in the pool so one huge
// payload does not pin memory forever (mirrors maxPooledBuf on the
// encode pool).
const maxPooledLease = 1 << 20

// leaseMinCap is the smallest buffer a fresh lease carries; tiny
// payloads still get a reusable buffer worth pooling.
const leaseMinCap = 1 << 10

var leasePool = sync.Pool{New: func() any { return &Lease{} }}

// Lease is one refcounted pooled buffer. Acquire with NewLease (one
// reference), share with Retain, and drop every reference with
// Release; the buffer recycles when the count reaches zero. The zero
// value is not usable.
type Lease struct {
	buf  []byte
	refs atomic.Int32
	gen  uint32 // epoch: bumped per pool cycle, for debug assertions
}

// NewLease returns a lease holding one reference and an empty buffer
// with capacity at least n.
func NewLease(n int) *Lease {
	l := leasePool.Get().(*Lease)
	l.gen++
	if cap(l.buf) < n {
		if n < leaseMinCap {
			n = leaseMinCap
		}
		l.buf = make([]byte, 0, n)
	} else {
		l.buf = l.buf[:0]
	}
	l.refs.Store(1)
	return l
}

// Bytes returns the lease's current contents. The slice (and any
// subslice of it) is valid until the caller's reference is released.
func (l *Lease) Bytes() []byte { return l.buf }

// SetBytes replaces the lease's contents, adopting b's backing array
// for future reuse. Only the sole owner (refs == 1) may call it —
// typically the producer, right after growing the buffer it filled.
func (l *Lease) SetBytes(b []byte) {
	if l.refs.Load() != 1 {
		panic("san: SetBytes on a shared lease")
	}
	l.buf = b
}

// Retain adds a reference: the holder promises a matching Release.
func (l *Lease) Retain() {
	if l.refs.Add(1) <= 1 {
		panic("san: retain of a released lease")
	}
}

// Release drops one reference; the last release recycles the buffer.
// Releasing more times than retained panics — that is the bug the
// refcount exists to catch, not a runtime condition.
func (l *Lease) Release() {
	n := l.refs.Add(-1)
	if n < 0 {
		panic("san: lease released more times than retained")
	}
	if n == 0 && cap(l.buf) <= maxPooledLease {
		leasePool.Put(l)
	}
}

// Refs returns the current reference count. A producer that sees 1
// knows it is the sole holder and may mutate or recycle the buffer;
// any other value means views are live. (The count can only fall
// concurrently, never rise, once the producer stops sharing it.)
func (l *Lease) Refs() int32 { return int32(l.refs.Load()) }

// Generation returns the lease's pool epoch — it changes every time
// the lease is re-acquired from the pool, so a test holding a stale
// view can detect recycling.
func (l *Lease) Generation() uint32 { return l.gen }

// CloneBytes is the copy-on-retain helper: a private copy of b that no
// lease backs, safe to hold forever. A nil or empty input returns nil.
func CloneBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
