package san

import (
	"context"
	"testing"
)

func BenchmarkSendReceive(b *testing.B) {
	n := NewNetwork(1)
	src := n.Endpoint(Addr{Node: "a", Proc: "src"}, 64)
	dst := n.Endpoint(Addr{Node: "b", Proc: "dst"}, 1024)
	go func() {
		for range dst.Inbox() {
		}
	}()
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for src.Send(dst.Addr(), "d", nil, 1024) != nil {
			b.Fatal("send failed")
		}
	}
}

func BenchmarkMulticastFanout(b *testing.B) {
	n := NewNetwork(1)
	src := n.Endpoint(Addr{Node: "a", Proc: "src"}, 64)
	const members = 32
	for i := 0; i < members; i++ {
		ep := n.Endpoint(Addr{Node: "m", Proc: string(rune('a' + i))}, 4096)
		ep.Join("grp")
		go func() {
			for range ep.Inbox() {
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Multicast("grp", "beacon", nil, 128)
	}
}

func BenchmarkCallRoundTrip(b *testing.B) {
	n := NewNetwork(1)
	client := n.Endpoint(Addr{Node: "a", Proc: "client"}, 256)
	server := n.Endpoint(Addr{Node: "b", Proc: "server"}, 256)
	go func() {
		for msg := range server.Inbox() {
			server.Respond(msg, "pong", nil, 16)
		}
	}()
	go func() {
		for msg := range client.Inbox() {
			client.DeliverReply(msg)
		}
	}()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(ctx, server.Addr(), "ping", nil, 16); err != nil {
			b.Fatal(err)
		}
	}
}
