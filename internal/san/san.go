// Package san implements the system-area network (SAN) that connects
// SNS components (paper §2.1). It provides addressed point-to-point
// messaging, best-effort multicast groups (the paper's IP-multicast
// analogue used for manager beacons and monitor reports), and failure
// injection: message loss, latency, and network partitions.
//
// The network is in-process: endpoints are registered per logical
// process and messages are delivered to buffered inboxes. Components
// communicate only through this interface, so the protocol paths are
// identical to a wire implementation; the impairment knobs let tests
// reproduce the paper's SAN saturation and partition scenarios.
//
// The send path is lock-free on the network side: topology (endpoint
// table, groups, partition map) and impairment config live in an
// immutable snapshot swapped atomically by the rare mutators
// (registration, Join/Leave, SetLoss, Partition), so concurrent
// senders never contend on a network-wide mutex. Loss decisions use
// per-endpoint deterministic rngs instead of a shared locked source.
//
// Wire mode (WithCodec) makes the serialization path real: every
// Send/Multicast/Call/Respond encodes its body to bytes through the
// installed Codec and every delivery decodes it, so messages cross the
// SAN exactly as they would a production interconnect. Encode buffers
// are pooled (steady-state sends allocate nothing for encoding) and
// Multicast encodes each body exactly once regardless of group size,
// sharing the immutable byte slice across all recipient decodes.
//
// A Fabric (SetFabric) splices this network into a larger logical SAN
// spanning OS processes: point-to-point sends whose destination is not
// registered locally are handed to the fabric as wire bytes, every
// multicast is mirrored to it, and frames arriving from remote
// processes re-enter through InjectUnicast/InjectMulticast. The
// in-process mode is untouched when no fabric is installed —
// internal/transport provides the socket implementation.
//
// Zero-copy views: when the codec also implements ViewCodec (and views
// are not disabled with WithDecodeViews(false)), delivery decodes
// []byte body fields as views that alias the encoded wire bytes
// instead of copying them. The wire bytes then live in a refcounted
// Lease carried on the Message; the buffer is recycled only after
// every holder releases, so consumers that finish with a message call
// msg.Release() (a performance obligation — forgetting it costs a pool
// miss, never corruption) and consumers that keep body bytes past the
// message clone them first (CloneBytes, copy-on-retain). Messages
// whose bodies contain no []byte never carry a lease, so control-plane
// consumers are unaffected.
package san

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Addr identifies a process endpoint on the SAN. Node is the hosting
// workstation (used for partition and node-failure semantics); Proc is
// the process name, unique per node.
type Addr struct {
	Node string
	Proc string
}

// String renders the address as "node/proc".
func (a Addr) String() string { return a.Node + "/" + a.Proc }

// IsZero reports whether the address is unset.
func (a Addr) IsZero() bool { return a.Node == "" && a.Proc == "" }

// Message is a datagram on the SAN. Body is an arbitrary value (the
// in-process analogue of a serialized payload); Size is the simulated
// wire size in bytes, used for bandwidth accounting and stats.
type Message struct {
	From  Addr
	To    Addr   // zero for multicast
	Group string // non-empty for multicast deliveries
	Kind  string
	Body  any
	Size  int

	// CallID and Reply implement the request/response convention:
	// a caller tags a request with a fresh CallID; the responder
	// echoes it with Reply=true.
	CallID uint64
	Reply  bool

	// Deadline, when non-zero, is the absolute wall-clock instant after
	// which nobody awaits this message's effect. Call stamps it from its
	// context so every in-process hop can drop already-expired work
	// instead of executing it. It is delivery metadata, not part of the
	// wire encoding: a body that must carry its deadline across a
	// process boundary embeds it (stub.TaskMsg does).
	Deadline time.Time

	// Trace identifies the end-to-end request this message serves, for
	// distributed tracing (obs package). Like Deadline it is delivery
	// metadata: the local SAN carries it on the Message, and the
	// transport carries it as a frame field (FlagTrace) rather than
	// inside the body encoding. Zero means untraced.
	Trace obs.TraceID

	// Lease, when non-nil, backs []byte fields of Body with a pooled
	// receive buffer (zero-copy view mode). The consumer that finishes
	// with the message calls Release; a consumer that keeps body bytes
	// beyond its own release must clone them first (CloneBytes).
	// Nil for passthrough deliveries and for bodies without views.
	Lease *Lease
}

// Retain adds a reference to the message's backing buffer (no-op when
// the message carries none): the holder promises a matching Release.
func (m Message) Retain() {
	if m.Lease != nil {
		m.Lease.Retain()
	}
}

// Release drops the message's reference to its backing buffer and
// clears the field, so the same Message value cannot double-release.
// Safe (and a no-op) when the message carries no lease — consumers can
// call it unconditionally.
func (m *Message) Release() {
	if m.Lease != nil {
		m.Lease.Release()
		m.Lease = nil
	}
}

// Stats counts network activity. In wire mode Bytes counts actual
// encoded wire bytes (the Size hint callers pass is replaced by the
// real encoded length); in passthrough mode it sums the Size hints.
type Stats struct {
	Sent         uint64 // point-to-point messages delivered
	Dropped      uint64 // lost to impairments, partitions, or full inboxes
	McastSent    uint64 // multicast deliveries attempted
	McastDropped uint64 // multicast deliveries lost
	Bytes        uint64 // bytes delivered

	// Wire-mode counters (zero in passthrough mode).
	WireEncodes uint64 // codec encode calls (one per Send/Call/Respond/Multicast)
	WireDecodes uint64 // codec decode calls (one per delivery)
	WireErrors  uint64 // bodies the codec rejected
}

// Errors returned by endpoint operations.
var (
	ErrClosed      = errors.New("san: endpoint closed")
	ErrUnknownAddr = errors.New("san: unknown address")
	ErrTimeout     = errors.New("san: call timed out")
	// ErrCodec wraps wire-mode serialization failures: the body could
	// not be encoded (or its bytes decoded), so nothing was sent — the
	// analogue of a marshalling error at a production NIC.
	ErrCodec = errors.New("san: wire codec")
	// ErrNetworkClosed is returned by operations on a network after
	// Close.
	ErrNetworkClosed = errors.New("san: network closed")
)

// Codec serializes message bodies for wire mode. AppendBody writes the
// encoding of body into dst (growing it as needed) and returns the
// extended slice; DecodeBody parses those bytes back into the concrete
// body type for kind. A Codec must be safe for concurrent use, and
// DecodeBody's values must not alias the input bytes (the network
// pools and reuses encode buffers); ViewCodec below is the aliasing
// variant. A zero-length encoding represents a nil body, and the
// codec is bypassed in both directions for them: nil bodies travel as
// zero-length wire without an encode call, and zero-length wire is
// delivered as a nil body without a decode call.
type Codec interface {
	AppendBody(dst []byte, kind string, body any) ([]byte, error)
	DecodeBody(kind string, data []byte) (any, error)
}

// ViewCodec extends Codec with zero-copy decoding: DecodeBodyView is
// DecodeBody except that []byte fields of the result may alias data
// directly, reported by aliased=true. The network then parks the wire
// bytes in a refcounted Lease on the delivered Message instead of
// recycling them, and consumers govern the buffer's lifetime with
// Release. Kinds that carry no byte slices decode identically in both
// modes and must report aliased=false.
type ViewCodec interface {
	Codec
	DecodeBodyView(kind string, data []byte) (body any, aliased bool, err error)
}

// Fabric carries SAN traffic to endpoints hosted by other OS
// processes — the pluggable seam the socket transport plugs into
// (internal/transport.Bridge). Implementations receive already-encoded
// wire bytes (valid only for the duration of the call; copy to
// retain) and must be safe for concurrent use. Delivery is best
// effort with datagram semantics, exactly like the local SAN.
type Fabric interface {
	// Unicast forwards a point-to-point message whose destination is
	// not registered on this network. It reports whether the message
	// was handed to at least one remote process; false means nobody
	// reachable holds the address (the network surfaces that to the
	// sender as ErrUnknownAddr). When lease is non-nil it backs wire;
	// a fabric that needs the bytes beyond the call (vectored or
	// chunked writes) retains it instead of copying, releasing when
	// the socket write completes. A nil lease keeps the old contract:
	// copy to retain. A non-zero trace rides the frame so the receiving
	// process can stamp it back onto the delivered Message.
	Unicast(from, to Addr, kind string, callID uint64, reply bool, trace obs.TraceID, wire []byte, lease *Lease) bool
	// Multicast forwards a group message to every remote process;
	// each re-fans it out to its own local group members.
	Multicast(from Addr, group, kind string, wire []byte)
	// EndpointUp/EndpointDown observe this network's endpoint table so
	// the fabric can advertise routes to its peers (and invalidate
	// them when an endpoint closes) instead of flooding first packets.
	// Both are idempotent and must not block.
	EndpointUp(a Addr)
	EndpointDown(a Addr)
}

// Option configures a Network at construction.
type Option func(*Network)

// WithCodec enables wire mode: every message body is serialized
// through c on send and re-materialized by decoding on delivery.
func WithCodec(c Codec) Option {
	return func(n *Network) { n.codec = c }
}

// WithDecodeViews forces zero-copy decode views on or off. The default
// (option absent) enables views whenever the codec implements
// ViewCodec; WithDecodeViews(false) pins the copying decode path — the
// escape hatch for consumers that cannot honor the Lease contract.
func WithDecodeViews(on bool) Option {
	return func(n *Network) { n.viewsForced, n.viewsOn = true, on }
}

// maxPooledBuf bounds the encode buffers kept in the pool so one huge
// payload does not pin memory forever.
const maxPooledBuf = 1 << 20

// encPool recycles wire-mode encode buffers; steady-state sends do not
// allocate for encoding.
var encPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

func putEncBuf(bp *[]byte, b []byte) {
	if cap(b) > maxPooledBuf {
		return
	}
	*bp = b[:0]
	encPool.Put(bp)
}

// netState is the immutable topology+impairment snapshot read by every
// Send and Multicast. Mutators clone it under Network.mu and swap the
// pointer; readers take one atomic load and never block.
type netState struct {
	endpoints map[Addr]*Endpoint
	groups    map[string][]*Endpoint
	partition map[string]int // node -> partition id; absent = 0
	fabric    Fabric         // nil = purely in-process

	// Impairments. Loss probabilities are applied per delivery.
	lossP      float64 // point-to-point loss probability
	mcastLossP float64 // multicast delivery loss probability
	latency    func() time.Duration
}

// clone makes a shallow copy with fresh maps; group member slices are
// shared until a mutator replaces them (copy-on-write).
func (s *netState) clone() *netState {
	c := &netState{
		endpoints:  make(map[Addr]*Endpoint, len(s.endpoints)),
		groups:     make(map[string][]*Endpoint, len(s.groups)),
		partition:  make(map[string]int, len(s.partition)),
		fabric:     s.fabric,
		lossP:      s.lossP,
		mcastLossP: s.mcastLossP,
		latency:    s.latency,
	}
	for a, ep := range s.endpoints {
		c.endpoints[a] = ep
	}
	for g, members := range s.groups {
		c.groups[g] = members
	}
	for node, p := range s.partition {
		c.partition[node] = p
	}
	return c
}

func (s *netState) samePartition(a, b string) bool {
	return s.partition[a] == s.partition[b]
}

// withoutMember returns members minus ep, or the original slice if ep
// is not present. The result is always safe to publish (never aliases
// a mutated slice).
func withoutMember(members []*Endpoint, ep *Endpoint) []*Endpoint {
	for i, m := range members {
		if m == ep {
			out := make([]*Endpoint, 0, len(members)-1)
			out = append(out, members[:i]...)
			return append(out, members[i+1:]...)
		}
	}
	return members
}

// Network is an in-process SAN. The zero value is not usable;
// construct with NewNetwork.
type Network struct {
	mu     sync.Mutex // serializes mutators; senders never take it
	state  atomic.Pointer[netState]
	seed   int64 // derives each endpoint's deterministic rng
	codec  Codec // nil = passthrough mode (bodies pass by reference)
	closed atomic.Bool

	// viewCodec is non-nil when deliveries decode zero-copy views
	// (codec implements ViewCodec and views are not disabled).
	viewCodec   ViewCodec
	viewsForced bool // WithDecodeViews was given
	viewsOn     bool // ... and its value

	// Process-wide observability plane: every component that holds the
	// network (or an endpoint on it) shares these.
	tracer   *obs.Tracer
	registry *obs.Registry

	sent         atomic.Uint64
	dropped      atomic.Uint64
	mcastSent    atomic.Uint64
	mcastDropped atomic.Uint64
	bytes        atomic.Uint64
	wireEncodes  atomic.Uint64
	wireDecodes  atomic.Uint64
	wireErrors   atomic.Uint64
}

// NewNetwork returns an unimpaired network seeded for deterministic
// loss decisions.
func NewNetwork(seed int64, opts ...Option) *Network {
	n := &Network{seed: seed}
	n.state.Store(&netState{
		endpoints: make(map[Addr]*Endpoint),
		groups:    make(map[string][]*Endpoint),
		partition: make(map[string]int),
	})
	for _, opt := range opts {
		opt(n)
	}
	if vc, ok := n.codec.(ViewCodec); ok && (!n.viewsForced || n.viewsOn) {
		n.viewCodec = vc
	}
	n.tracer = obs.NewTracer(uint64(seed), 0)
	n.registry = obs.NewRegistry()
	n.registry.SetCollector("san", func(emit func(string, float64)) {
		s := n.Stats()
		emit("sent", float64(s.Sent))
		emit("dropped", float64(s.Dropped))
		emit("mcast_sent", float64(s.McastSent))
		emit("mcast_dropped", float64(s.McastDropped))
		emit("bytes", float64(s.Bytes))
		emit("wire_encodes", float64(s.WireEncodes))
		emit("wire_decodes", float64(s.WireDecodes))
		emit("wire_errors", float64(s.WireErrors))
	})
	return n
}

// Tracer returns the network's request tracer — the shared span sink
// for every component in this process.
func (n *Network) Tracer() *obs.Tracer { return n.tracer }

// Registry returns the network's metrics registry.
func (n *Network) Registry() *obs.Registry { return n.registry }

// WireMode reports whether a codec is installed.
func (n *Network) WireMode() bool { return n.codec != nil }

// DecodeViews reports whether deliveries decode zero-copy views.
func (n *Network) DecodeViews() bool { return n.viewCodec != nil }

// SetFabric installs (or, with nil, detaches) the cross-process
// fabric. A fabric requires wire mode: message bodies must already be
// bytes to cross a process boundary, so installing one on a
// passthrough network panics — that is a deployment bug, not a
// runtime condition. Endpoints already registered are replayed to the
// new fabric's EndpointUp so its route advertisements start complete.
func (n *Network) SetFabric(f Fabric) {
	if f != nil && n.codec == nil {
		panic("san: SetFabric requires wire mode (construct the network with WithCodec)")
	}
	var eps []Addr
	n.mutate(func(s *netState) {
		s.fabric = f
		if f != nil {
			for a := range s.endpoints {
				eps = append(eps, a)
			}
		}
	})
	for _, a := range eps {
		f.EndpointUp(a)
	}
}

// Close shuts the network down deterministically: the fabric is
// detached, every endpoint is closed (pending calls fail, inboxes
// close after their buffered messages drain), and subsequent sends
// fail with ErrClosed. Latency-delayed deliveries still in flight are
// dropped when their timers fire — nothing is ever delivered to a
// closed endpoint — so a transport bridge can tear down without
// leaking goroutines or racing late pushes. Close is idempotent.
func (n *Network) Close() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	var eps []*Endpoint
	n.mutate(func(s *netState) {
		for _, ep := range s.endpoints {
			eps = append(eps, ep)
		}
		s.endpoints = make(map[Addr]*Endpoint)
		s.groups = make(map[string][]*Endpoint)
		s.fabric = nil
	})
	for _, ep := range eps {
		ep.closeInternal()
	}
}

// Closed reports whether Close has been called.
func (n *Network) Closed() bool { return n.closed.Load() }

// InjectUnicast delivers a point-to-point message that arrived from a
// remote process over the fabric: the wire bytes are decoded through
// the local codec and pushed to the destination endpoint, applying
// this network's partition map (loss was the sending side's call). It
// reports whether the message reached an inbox — false reads as a
// dropped datagram, never an error, mirroring a NIC discarding a
// frame for an unbound port.
//
// A non-nil lease must back wire (the transport's receive buffer); in
// view mode the delivery retains it so the transport can recycle the
// buffer only after the consumer releases. The caller keeps its own
// reference either way.
func (n *Network) InjectUnicast(from, to Addr, kind string, callID uint64, reply bool, trace obs.TraceID, wire []byte, lease *Lease) bool {
	if n.closed.Load() || n.codec == nil {
		return false
	}
	st := n.state.Load()
	dst, ok := st.endpoints[to]
	if !ok {
		return false
	}
	if !st.samePartition(from.Node, to.Node) {
		n.dropped.Add(1)
		return false
	}
	body, aliased, err := n.decodeDelivery(kind, wire)
	if err != nil {
		n.dropped.Add(1)
		return false
	}
	msg := Message{From: from, To: to, Kind: kind, Body: body, Size: len(wire), CallID: callID, Reply: reply, Trace: trace}
	if aliased && lease != nil {
		lease.Retain()
		msg.Lease = lease
	}
	if n.deliver(dst, msg, st.latency) {
		n.sent.Add(1)
		n.bytes.Add(uint64(len(wire)))
		return true
	}
	msg.Release()
	n.dropped.Add(1)
	return false
}

// InjectMulticast fans a group message that arrived from a remote
// process out to this network's local members, decoding a fresh body
// per actual delivery exactly as the local multicast path does. It
// returns the number of members reached. Lease semantics match
// InjectUnicast: each aliased delivery retains it.
func (n *Network) InjectMulticast(from Addr, group, kind string, wire []byte, lease *Lease) int {
	if n.closed.Load() || n.codec == nil {
		return 0
	}
	st := n.state.Load()
	delivered := 0
	for _, dst := range st.groups[group] {
		if dst.addr == from {
			continue
		}
		n.mcastSent.Add(1)
		if !st.samePartition(from.Node, dst.addr.Node) || dst.chance(st.mcastLossP) {
			n.mcastDropped.Add(1)
			continue
		}
		body, aliased, err := n.decodeDelivery(kind, wire)
		if err != nil {
			n.mcastDropped.Add(1)
			continue
		}
		msg := Message{From: from, Group: group, Kind: kind, Body: body, Size: len(wire)}
		if aliased && lease != nil {
			lease.Retain()
			msg.Lease = lease
		}
		if n.deliver(dst, msg, st.latency) {
			delivered++
			n.bytes.Add(uint64(len(wire)))
		} else {
			msg.Release()
			n.mcastDropped.Add(1)
		}
	}
	return delivered
}

// encodeToPool serializes body into a pooled buffer — the sender's
// half of the wire, at amortized zero allocations. On success the
// caller owns the buffer and must release it with putEncBuf(bp, buf).
func (n *Network) encodeToPool(kind string, body any) (buf []byte, bp *[]byte, err error) {
	bp = encPool.Get().(*[]byte)
	buf, err = n.codec.AppendBody((*bp)[:0], kind, body)
	if err != nil {
		encPool.Put(bp)
		n.wireErrors.Add(1)
		return nil, nil, fmt.Errorf("%w: encode %s: %v", ErrCodec, kind, err)
	}
	n.wireEncodes.Add(1)
	return buf, bp, nil
}

// decodeWire materializes one delivery's body from the shared wire
// bytes — the receiver's half. It is called once per actual delivery;
// datagrams the network drops are never decoded (the receiver never
// saw them). Decoded values alias nothing in the buffer.
func (n *Network) decodeWire(kind string, wire []byte) (any, error) {
	out, err := n.codec.DecodeBody(kind, wire)
	if err != nil {
		n.wireErrors.Add(1)
		return nil, fmt.Errorf("%w: decode %s: %v", ErrCodec, kind, err)
	}
	n.wireDecodes.Add(1)
	return out, nil
}

// encodeWire serializes body for one send or multicast. Three shapes,
// by decreasing frequency on the data plane:
//   - view mode: the bytes land in a fresh refcounted Lease (returned
//     non-nil) so deliveries can alias them;
//   - copy mode: a pooled buffer (bp non-nil), recycled immediately
//     after the copying decode;
//   - nil body: encoded with no buffer at all — a bodiless control
//     message appends nothing, so there is nothing to pool. (A codec
//     that encodes nil to bytes still works; the fresh slice is simply
//     GC-owned.)
//
// The caller settles exactly one obligation: putEncBuf(bp, wire) when
// bp is non-nil, lease.Release() when lease is non-nil.
func (n *Network) encodeWire(kind string, body any) (wire []byte, bp *[]byte, lease *Lease, err error) {
	if body == nil {
		// Nil bodies bypass the codec in both directions: they travel
		// as zero-length wire and decodeDelivery delivers them as nil
		// without a decode call. This is what puts wire-mode control
		// messages (acks, shutdowns, stats probes) at passthrough
		// parity — no codec call, no pool round trip, no counters.
		return nil, nil, nil, nil
	}
	if n.viewCodec != nil {
		lease = NewLease(0)
		wire, err = n.codec.AppendBody(lease.buf, kind, body)
		if err != nil {
			lease.Release()
			n.wireErrors.Add(1)
			return nil, nil, nil, fmt.Errorf("%w: encode %s: %v", ErrCodec, kind, err)
		}
		lease.buf = wire // adopt growth so the pool keeps the capacity
		n.wireEncodes.Add(1)
		return wire, nil, lease, nil
	}
	wire, bp, err = n.encodeToPool(kind, body)
	return wire, bp, nil, err
}

// releaseEnc settles encodeWire's buffer obligation on paths that drop
// the message before (or instead of) delivery.
func (n *Network) releaseEnc(bp *[]byte, lease *Lease, wire []byte) {
	if bp != nil {
		putEncBuf(bp, wire)
	}
	if lease != nil {
		lease.Release()
	}
}

// decodeDelivery materializes one delivery's body. In view mode the
// result's []byte fields may alias wire (aliased=true) and the caller
// pairs the message with the backing lease. A zero-length encoding is
// a nil body and skips the codec entirely — the nil-body fast path
// that puts wire-mode control messages at parity with passthrough.
func (n *Network) decodeDelivery(kind string, wire []byte) (body any, aliased bool, err error) {
	if len(wire) == 0 {
		return nil, false, nil
	}
	if vc := n.viewCodec; vc != nil {
		body, aliased, err = vc.DecodeBodyView(kind, wire)
		if err != nil {
			n.wireErrors.Add(1)
			return nil, false, fmt.Errorf("%w: decode %s: %v", ErrCodec, kind, err)
		}
		n.wireDecodes.Add(1)
		return body, aliased, nil
	}
	body, err = n.decodeWire(kind, wire)
	return body, false, err
}

// mutate applies f to a private clone of the current state and
// publishes the result. All topology/config writers funnel through
// here; the pointer swap is the linearization point for senders.
func (n *Network) mutate(f func(s *netState)) {
	n.mu.Lock()
	s := n.state.Load().clone()
	f(s)
	n.state.Store(s)
	n.mu.Unlock()
}

// SetLoss configures point-to-point and multicast loss probabilities
// in [0, 1]. The paper observed that multicast control traffic is the
// first casualty of SAN saturation (§4.6); tests reproduce that by
// raising mcast loss.
func (n *Network) SetLoss(p2p, mcast float64) {
	n.mutate(func(s *netState) { s.lossP, s.mcastLossP = p2p, mcast })
}

// SetLatency installs a per-message latency source (nil for instant
// delivery). Latency is applied with real timers; keep it small in
// tests.
func (n *Network) SetLatency(f func() time.Duration) {
	n.mutate(func(s *netState) { s.latency = f })
}

// Partition assigns nodes to partition groups. Messages between nodes
// in different groups are dropped. Nodes not mentioned are in group 0.
func (n *Network) Partition(groups map[string]int) {
	n.mutate(func(s *netState) {
		s.partition = make(map[string]int, len(groups))
		for node, g := range groups {
			s.partition[node] = g
		}
	})
}

// Heal removes all partitions.
func (n *Network) Heal() { n.Partition(nil) }

// LossBurst raises loss probabilities to (p2p, mcast) for dur, then
// restores the values that were in effect when the burst began — a
// scheduled impairment for chaos scripts reproducing the paper's SAN
// saturation bursts (§4.6). The returned timer can cancel the
// restore; overlapping bursts restore whatever each one captured, so
// chaos schedules should serialize them.
func (n *Network) LossBurst(p2p, mcast float64, dur time.Duration) *time.Timer {
	var prevP2P, prevMcast float64
	n.mutate(func(s *netState) {
		prevP2P, prevMcast = s.lossP, s.mcastLossP
		s.lossP, s.mcastLossP = p2p, mcast
	})
	return time.AfterFunc(dur, func() { n.SetLoss(prevP2P, prevMcast) })
}

// PartitionFor partitions the network for dur, then restores the
// partition map that was in effect when it was called — the scheduled
// form of Partition/Heal for scripted fault injection. The returned
// timer can cancel the restore. Like LossBurst, overlapping calls
// restore whatever each one captured; serialize them in schedules.
func (n *Network) PartitionFor(groups map[string]int, dur time.Duration) *time.Timer {
	var prev map[string]int
	n.mutate(func(s *netState) {
		prev = s.partition
		s.partition = make(map[string]int, len(groups))
		for node, g := range groups {
			s.partition[node] = g
		}
	})
	return time.AfterFunc(dur, func() {
		n.mutate(func(s *netState) { s.partition = prev })
	})
}

// Stats returns a snapshot of network counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:         n.sent.Load(),
		Dropped:      n.dropped.Load(),
		McastSent:    n.mcastSent.Load(),
		McastDropped: n.mcastDropped.Load(),
		Bytes:        n.bytes.Load(),
		WireEncodes:  n.wireEncodes.Load(),
		WireDecodes:  n.wireDecodes.Load(),
		WireErrors:   n.wireErrors.Load(),
	}
}

// Endpoint registers a new endpoint for addr with the given inbox
// capacity. Registering an address twice replaces the old endpoint
// (the old one is closed), which models a restarted process reclaiming
// its name.
func (n *Network) Endpoint(addr Addr, inboxCap int) *Endpoint {
	if inboxCap <= 0 {
		inboxCap = 256
	}
	ep := &Endpoint{
		net:     n,
		addr:    addr,
		inbox:   make(chan Message, inboxCap),
		pending: make(map[uint64]chan Message),
	}
	ep.rng.seed(n.seed, addr)
	// The closed check happens inside the mutator (under its lock) so
	// a process racing the network's teardown gets a dead endpoint
	// instead of resurrecting the address table after Close swept it;
	// the unchanged clone mutate publishes in that case is harmless.
	var old *Endpoint
	var fab Fabric
	registered := false
	n.mutate(func(s *netState) {
		if n.closed.Load() {
			return
		}
		old = s.endpoints[addr]
		s.endpoints[addr] = ep
		fab = s.fabric
		registered = true
	})
	if !registered {
		ep.closeInternal()
		return ep
	}
	if old != nil {
		old.Close()
	}
	if fab != nil {
		fab.EndpointUp(addr)
	}
	return ep
}

// Lookup reports whether an endpoint is registered for addr.
func (n *Network) Lookup(addr Addr) bool {
	_, ok := n.state.Load().endpoints[addr]
	return ok
}

// Drop closes a single endpoint abruptly (process crash): it vanishes
// from the address table and all groups without any goodbye traffic.
func (n *Network) Drop(addr Addr) {
	var ep *Endpoint
	var fab Fabric
	n.mutate(func(s *netState) {
		var ok bool
		ep, ok = s.endpoints[addr]
		if !ok {
			return
		}
		delete(s.endpoints, addr)
		for g, members := range s.groups {
			s.groups[g] = withoutMember(members, ep)
		}
		fab = s.fabric
	})
	if ep != nil {
		ep.closeInternal()
		if fab != nil {
			fab.EndpointDown(addr)
		}
	}
}

// DropNode closes every endpoint hosted on the named node and removes
// it from all groups, modelling a workstation crash.
func (n *Network) DropNode(node string) {
	var victims []*Endpoint
	var fab Fabric
	n.mutate(func(s *netState) {
		for addr, ep := range s.endpoints {
			if addr.Node == node {
				victims = append(victims, ep)
				delete(s.endpoints, addr)
			}
		}
		for g, members := range s.groups {
			kept := members
			for _, ep := range members {
				if ep.addr.Node == node {
					kept = withoutMember(kept, ep)
				}
			}
			s.groups[g] = kept
		}
		fab = s.fabric
	})
	for _, ep := range victims {
		ep.closeInternal()
		if fab != nil {
			fab.EndpointDown(ep.addr)
		}
	}
}

// deliver places msg in ep's inbox, applying latency. Returns false if
// the inbox was full or the endpoint closed.
func (n *Network) deliver(ep *Endpoint, msg Message, latency func() time.Duration) bool {
	if latency != nil {
		d := latency()
		if d > 0 {
			return deliverLater(ep, msg, d)
		}
	}
	return ep.push(msg)
}

// deliverLater schedules a latency-delayed push. It lives in its own
// never-inlined function so the timer closure's capture of msg makes
// it heap-escape only on this rare path; merged into deliver, the
// capture forces every zero-latency delivery to allocate the whole
// Message (the 1 alloc/op the send benchmarks used to carry).
//
//go:noinline
func deliverLater(ep *Endpoint, msg Message, d time.Duration) bool {
	time.AfterFunc(d, func() {
		if !ep.push(msg) {
			msg.Release() // late drop: free the view buffer too
		}
	})
	return true // counted as sent; late drop still possible
}

// atomicRand is a lock-free deterministic random source (splitmix64):
// each draw advances an atomic counter and mixes it, so concurrent
// senders on one endpoint never serialize on a mutex, and a fixed
// (network seed, address) pair always yields the same sequence.
type atomicRand struct {
	state atomic.Uint64
}

func (r *atomicRand) seed(seed int64, addr Addr) {
	h := fnv.New64a()
	h.Write([]byte(addr.Node))
	h.Write([]byte{0})
	h.Write([]byte(addr.Proc))
	r.state.Store(uint64(seed)*0x9E3779B97F4A7C15 ^ h.Sum64())
}

// Float64 returns a uniform value in [0, 1).
func (r *atomicRand) Float64() float64 {
	x := r.state.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// Endpoint is one process's attachment to the SAN.
type Endpoint struct {
	net   *Network
	addr  Addr
	inbox chan Message
	rng   atomicRand

	closed atomic.Bool
	nextID atomic.Uint64

	// closeMu serializes inbox close against in-flight pushes: pushers
	// hold the read side (concurrent senders never exclude each other;
	// the channel provides its own synchronization), Close the write.
	closeMu sync.RWMutex

	mu      sync.Mutex // guards pending, groups
	pending map[uint64]chan Message
	groups  []string
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() Addr { return e.addr }

// Inbox returns the receive channel. The channel is closed when the
// endpoint closes.
func (e *Endpoint) Inbox() <-chan Message { return e.inbox }

// Tracer returns the owning network's request tracer, so components
// built around an endpoint can record spans without extra plumbing.
func (e *Endpoint) Tracer() *obs.Tracer { return e.net.tracer }

// Registry returns the owning network's metrics registry.
func (e *Endpoint) Registry() *obs.Registry { return e.net.registry }

// chance draws a loss decision from the endpoint's own rng.
func (e *Endpoint) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return e.rng.Float64() < p
}

// push attempts non-blocking delivery.
func (e *Endpoint) push(msg Message) bool {
	e.closeMu.RLock()
	if e.closed.Load() {
		e.closeMu.RUnlock()
		return false
	}
	var ok bool
	select {
	case e.inbox <- msg:
		ok = true
	default:
	}
	e.closeMu.RUnlock()
	return ok
}

// Close detaches the endpoint: it leaves all groups, unregisters the
// address, fails pending calls, and closes the inbox. The fabric is
// told only when this endpoint actually held the address — a replaced
// endpoint (restart reclaiming its name) must not invalidate its
// successor's route.
func (e *Endpoint) Close() {
	removed := false
	var fab Fabric
	e.net.mutate(func(s *netState) {
		if s.endpoints[e.addr] == e {
			delete(s.endpoints, e.addr)
			removed = true
			fab = s.fabric
		}
		for _, g := range e.groupsSnapshot() {
			s.groups[g] = withoutMember(s.groups[g], e)
		}
	})
	e.closeInternal()
	if removed && fab != nil {
		fab.EndpointDown(e.addr)
	}
}

func (e *Endpoint) groupsSnapshot() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.groups...)
}

func (e *Endpoint) closeInternal() {
	e.closeMu.Lock()
	if e.closed.Load() {
		e.closeMu.Unlock()
		return
	}
	e.closed.Store(true)
	close(e.inbox)
	e.closeMu.Unlock()
	e.mu.Lock()
	for id, ch := range e.pending {
		close(ch)
		delete(e.pending, id)
	}
	e.mu.Unlock()
}

// Join subscribes the endpoint to a multicast group (idempotent).
func (e *Endpoint) Join(group string) {
	e.net.mutate(func(s *netState) {
		members := s.groups[group]
		for _, m := range members {
			if m == e {
				return
			}
		}
		out := make([]*Endpoint, 0, len(members)+1)
		out = append(out, members...)
		s.groups[group] = append(out, e)
	})
	e.mu.Lock()
	found := false
	for _, g := range e.groups {
		if g == group {
			found = true
			break
		}
	}
	if !found {
		e.groups = append(e.groups, group)
	}
	e.mu.Unlock()
}

// Leave unsubscribes the endpoint from a multicast group.
func (e *Endpoint) Leave(group string) {
	e.net.mutate(func(s *netState) {
		s.groups[group] = withoutMember(s.groups[group], e)
	})
	e.mu.Lock()
	for i, g := range e.groups {
		if g == group {
			e.groups = append(e.groups[:i], e.groups[i+1:]...)
			break
		}
	}
	e.mu.Unlock()
}

// Send delivers a point-to-point message. It returns ErrUnknownAddr if
// no endpoint holds the destination address, or an ErrCodec-wrapped
// error in wire mode when the body cannot be serialized; losses and
// partition drops are silent (datagram semantics), mirroring a real
// SAN.
func (e *Endpoint) Send(to Addr, kind string, body any, size int) error {
	return e.send(to, kind, body, size, 0, false, time.Time{}, 0)
}

func (e *Endpoint) send(to Addr, kind string, body any, size int, callID uint64, reply bool, deadline time.Time, trace obs.TraceID) error {
	if e.closed.Load() {
		return ErrClosed // a dead process sends nothing
	}
	n := e.net
	if n.closed.Load() {
		return ErrNetworkClosed
	}
	st := n.state.Load()
	dst, ok := st.endpoints[to]
	if !ok {
		if st.fabric == nil {
			return fmt.Errorf("%w: %s", ErrUnknownAddr, to)
		}
		return e.sendRemote(st, to, kind, body, callID, reply, trace)
	}
	var (
		wire  []byte
		bp    *[]byte
		lease *Lease
	)
	if n.codec != nil {
		// The sender pays serialization before the network can drop
		// the datagram, as a real NIC would.
		var err error
		wire, bp, lease, err = n.encodeWire(kind, body)
		if err != nil {
			return err
		}
		size = len(wire)
	}
	if !st.samePartition(e.addr.Node, to.Node) || e.chance(st.lossP) {
		n.releaseEnc(bp, lease, wire)
		n.dropped.Add(1)
		return nil
	}
	var msgLease *Lease
	if n.codec != nil {
		decoded, aliased, err := n.decodeDelivery(kind, wire)
		if err != nil {
			// The bytes arrived but the receiver cannot parse them:
			// dropped on delivery, surfaced to the sender for tests.
			n.releaseEnc(bp, lease, wire)
			n.dropped.Add(1)
			return err
		}
		body = decoded
		if aliased && lease != nil {
			// The delivery's reference; the sender's own (below) then
			// leaves the buffer alive until the consumer releases.
			lease.Retain()
			msgLease = lease
		}
		n.releaseEnc(bp, lease, wire)
	}
	msg := Message{From: e.addr, To: to, Kind: kind, Body: body, Size: size, CallID: callID, Reply: reply, Deadline: deadline, Trace: trace, Lease: msgLease}
	if n.deliver(dst, msg, st.latency) {
		n.sent.Add(1)
		n.bytes.Add(uint64(size))
	} else {
		msg.Release()
		n.dropped.Add(1)
	}
	return nil
}

// sendRemote hands a message whose destination lives in another OS
// process to the fabric. The sender pays the same costs as a local
// send — partition check, loss draw, serialization — before the bytes
// leave; delivery on the far side is the remote network's business
// (datagram semantics, no acknowledgement). A fabric that reports the
// address unplaceable — no peer advertises it and it is not worth a
// flood — surfaces as ErrUnknownAddr, the same answer a purely local
// network gives for an unbound address.
func (e *Endpoint) sendRemote(st *netState, to Addr, kind string, body any, callID uint64, reply bool, trace obs.TraceID) error {
	n := e.net
	if !st.samePartition(e.addr.Node, to.Node) || e.chance(st.lossP) {
		n.dropped.Add(1)
		return nil
	}
	wire, bp, lease, err := n.encodeWire(kind, body)
	if err != nil {
		return err
	}
	handed := st.fabric.Unicast(e.addr, to, kind, callID, reply, trace, wire, lease)
	if handed {
		n.sent.Add(1)
		n.bytes.Add(uint64(len(wire)))
	} else {
		n.dropped.Add(1)
	}
	n.releaseEnc(bp, lease, wire)
	if !handed {
		return fmt.Errorf("%w: %s", ErrUnknownAddr, to)
	}
	return nil
}

// Multicast delivers a best-effort message to every group member
// except the sender. It returns the number of members the message was
// handed to (before loss). The whole fanout reads one topology
// snapshot: membership or impairment changes mid-loop affect only
// later multicasts.
//
// In wire mode the body is encoded exactly once per call, however
// large the group: the immutable byte slice is shared across the
// fanout and each actual delivery decodes its own fresh value from it
// (lost datagrams are never decoded — the receiver never saw them).
// An unencodable body reaches nobody and returns 0.
func (e *Endpoint) Multicast(group, kind string, body any, size int) int {
	n := e.net
	if n.closed.Load() {
		return 0
	}
	st := n.state.Load()
	members := st.groups[group]
	var (
		wire    []byte
		bufp    *[]byte
		lease   *Lease
		encoded bool
	)
	if n.codec != nil && (len(members) > 0 || st.fabric != nil) {
		var err error
		wire, bufp, lease, err = n.encodeWire(kind, body) // encode-once fan-out: 1 per Multicast
		if err != nil {
			return 0
		}
		size = len(wire)
		encoded = true
	}
	delivered := 0
	for _, dst := range members {
		if dst.addr == e.addr {
			continue
		}
		n.mcastSent.Add(1)
		if !st.samePartition(e.addr.Node, dst.addr.Node) || e.chance(st.mcastLossP) {
			n.mcastDropped.Add(1)
			continue
		}
		mbody := body
		var msgLease *Lease
		if n.codec != nil {
			decoded, aliased, err := n.decodeDelivery(kind, wire)
			if err != nil {
				n.mcastDropped.Add(1)
				continue
			}
			mbody = decoded
			if aliased && lease != nil {
				lease.Retain() // one reference per aliased delivery
				msgLease = lease
			}
		}
		msg := Message{From: e.addr, Group: group, Kind: kind, Body: mbody, Size: size, Lease: msgLease}
		if n.deliver(dst, msg, st.latency) {
			delivered++
			n.bytes.Add(uint64(size))
		} else {
			msg.Release()
			n.mcastDropped.Add(1)
		}
	}
	if st.fabric != nil && encoded {
		// The same encode-once bytes cross the process boundary; each
		// remote network re-fans them out to its own members.
		st.fabric.Multicast(e.addr, group, kind, wire)
	}
	n.releaseEnc(bufp, lease, wire)
	return delivered
}

// Call sends a request and waits for the matching reply or context
// cancellation. The component owning the destination endpoint must
// respond via Respond. The caller's receive loop must route reply
// messages through DeliverReply. The context's deadline, if any, is
// stamped on the delivered request (Message.Deadline) so the callee
// can skip work nobody will wait for.
func (e *Endpoint) Call(ctx context.Context, to Addr, kind string, body any, size int) (Message, error) {
	if e.closed.Load() {
		return Message{}, ErrClosed
	}
	id := e.nextID.Add(1)
	ch := make(chan Message, 1)
	e.mu.Lock()
	if e.closed.Load() {
		e.mu.Unlock()
		return Message{}, ErrClosed
	}
	e.pending[id] = ch
	e.mu.Unlock()

	defer func() {
		e.mu.Lock()
		delete(e.pending, id)
		e.mu.Unlock()
	}()

	deadline, _ := ctx.Deadline()
	if err := e.send(to, kind, body, size, id, false, deadline, obs.TraceFrom(ctx)); err != nil {
		return Message{}, err
	}
	select {
	case m, ok := <-ch:
		if !ok {
			return Message{}, ErrClosed
		}
		return m, nil
	case <-ctx.Done():
		return Message{}, fmt.Errorf("%w: %s to %s", ErrTimeout, kind, to)
	}
}

// DeliverReply routes a reply message to a waiting Call. It returns
// true if the message was consumed. Receive loops should call this
// first for every inbound message.
func (e *Endpoint) DeliverReply(msg Message) bool {
	if !msg.Reply || msg.CallID == 0 {
		return false
	}
	e.mu.Lock()
	ch, ok := e.pending[msg.CallID]
	if ok {
		delete(e.pending, msg.CallID)
	}
	e.mu.Unlock()
	if ok {
		ch <- msg
	} else {
		msg.Release() // the caller gave up: nobody will read the body
	}
	return true // replies are consumed even if the caller gave up
}

// Respond answers a request message received from Call. The request's
// trace id is echoed onto the reply so the return leg of a traced
// request stays attributable.
func (e *Endpoint) Respond(req Message, kind string, body any, size int) error {
	return e.send(req.From, kind, body, size, req.CallID, true, time.Time{}, req.Trace)
}

// Expired reports whether the message carries a deadline that has
// already passed at time now — the check every hop makes before
// spending work on a request nobody awaits.
func (m Message) Expired(now time.Time) bool {
	return !m.Deadline.IsZero() && now.After(m.Deadline)
}
