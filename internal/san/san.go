// Package san implements the system-area network (SAN) that connects
// SNS components (paper §2.1). It provides addressed point-to-point
// messaging, best-effort multicast groups (the paper's IP-multicast
// analogue used for manager beacons and monitor reports), and failure
// injection: message loss, latency, and network partitions.
//
// The network is in-process: endpoints are registered per logical
// process and messages are delivered to buffered inboxes. Components
// communicate only through this interface, so the protocol paths are
// identical to a wire implementation; the impairment knobs let tests
// reproduce the paper's SAN saturation and partition scenarios.
package san

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Addr identifies a process endpoint on the SAN. Node is the hosting
// workstation (used for partition and node-failure semantics); Proc is
// the process name, unique per node.
type Addr struct {
	Node string
	Proc string
}

// String renders the address as "node/proc".
func (a Addr) String() string { return a.Node + "/" + a.Proc }

// IsZero reports whether the address is unset.
func (a Addr) IsZero() bool { return a.Node == "" && a.Proc == "" }

// Message is a datagram on the SAN. Body is an arbitrary value (the
// in-process analogue of a serialized payload); Size is the simulated
// wire size in bytes, used for bandwidth accounting and stats.
type Message struct {
	From  Addr
	To    Addr   // zero for multicast
	Group string // non-empty for multicast deliveries
	Kind  string
	Body  any
	Size  int

	// CallID and Reply implement the request/response convention:
	// a caller tags a request with a fresh CallID; the responder
	// echoes it with Reply=true.
	CallID uint64
	Reply  bool
}

// Stats counts network activity.
type Stats struct {
	Sent         uint64 // point-to-point messages delivered
	Dropped      uint64 // lost to impairments, partitions, or full inboxes
	McastSent    uint64 // multicast deliveries attempted
	McastDropped uint64 // multicast deliveries lost
	Bytes        uint64 // bytes delivered
}

// Errors returned by endpoint operations.
var (
	ErrClosed      = errors.New("san: endpoint closed")
	ErrUnknownAddr = errors.New("san: unknown address")
	ErrTimeout     = errors.New("san: call timed out")
)

// Network is an in-process SAN. The zero value is not usable;
// construct with NewNetwork.
type Network struct {
	mu        sync.RWMutex
	endpoints map[Addr]*Endpoint
	groups    map[string]map[Addr]*Endpoint
	partition map[string]int // node -> partition id; absent = 0
	rng       *rand.Rand
	rngMu     sync.Mutex

	// Impairments. Loss probabilities are applied per delivery.
	lossP      float64 // point-to-point loss probability
	mcastLossP float64 // multicast delivery loss probability
	latency    func() time.Duration

	sent         atomic.Uint64
	dropped      atomic.Uint64
	mcastSent    atomic.Uint64
	mcastDropped atomic.Uint64
	bytes        atomic.Uint64
}

// NewNetwork returns an unimpaired network seeded for deterministic
// loss decisions.
func NewNetwork(seed int64) *Network {
	return &Network{
		endpoints: make(map[Addr]*Endpoint),
		groups:    make(map[string]map[Addr]*Endpoint),
		partition: make(map[string]int),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// SetLoss configures point-to-point and multicast loss probabilities
// in [0, 1]. The paper observed that multicast control traffic is the
// first casualty of SAN saturation (§4.6); tests reproduce that by
// raising mcast loss.
func (n *Network) SetLoss(p2p, mcast float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossP, n.mcastLossP = p2p, mcast
}

// SetLatency installs a per-message latency source (nil for instant
// delivery). Latency is applied with real timers; keep it small in
// tests.
func (n *Network) SetLatency(f func() time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = f
}

// Partition assigns nodes to partition groups. Messages between nodes
// in different groups are dropped. Nodes not mentioned are in group 0.
func (n *Network) Partition(groups map[string]int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[string]int, len(groups))
	for node, g := range groups {
		n.partition[node] = g
	}
}

// Heal removes all partitions.
func (n *Network) Heal() { n.Partition(nil) }

// Stats returns a snapshot of network counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:         n.sent.Load(),
		Dropped:      n.dropped.Load(),
		McastSent:    n.mcastSent.Load(),
		McastDropped: n.mcastDropped.Load(),
		Bytes:        n.bytes.Load(),
	}
}

// Endpoint registers a new endpoint for addr with the given inbox
// capacity. Registering an address twice replaces the old endpoint
// (the old one is closed), which models a restarted process reclaiming
// its name.
func (n *Network) Endpoint(addr Addr, inboxCap int) *Endpoint {
	if inboxCap <= 0 {
		inboxCap = 256
	}
	ep := &Endpoint{
		net:     n,
		addr:    addr,
		inbox:   make(chan Message, inboxCap),
		pending: make(map[uint64]chan Message),
	}
	n.mu.Lock()
	old := n.endpoints[addr]
	n.endpoints[addr] = ep
	n.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return ep
}

// Lookup reports whether an endpoint is registered for addr.
func (n *Network) Lookup(addr Addr) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.endpoints[addr]
	return ok
}

// Drop closes a single endpoint abruptly (process crash): it vanishes
// from the address table and all groups without any goodbye traffic.
func (n *Network) Drop(addr Addr) {
	n.mu.Lock()
	ep, ok := n.endpoints[addr]
	if ok {
		delete(n.endpoints, addr)
	}
	for _, members := range n.groups {
		delete(members, addr)
	}
	n.mu.Unlock()
	if ok {
		ep.closeLocked()
	}
}

// DropNode closes every endpoint hosted on the named node and removes
// it from all groups, modelling a workstation crash.
func (n *Network) DropNode(node string) {
	n.mu.Lock()
	var victims []*Endpoint
	for addr, ep := range n.endpoints {
		if addr.Node == node {
			victims = append(victims, ep)
			delete(n.endpoints, addr)
		}
	}
	for _, members := range n.groups {
		for addr := range members {
			if addr.Node == node {
				delete(members, addr)
			}
		}
	}
	n.mu.Unlock()
	for _, ep := range victims {
		ep.closeLocked()
	}
}

func (n *Network) samePartition(a, b string) bool {
	return n.partition[a] == n.partition[b]
}

func (n *Network) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	n.rngMu.Lock()
	v := n.rng.Float64()
	n.rngMu.Unlock()
	return v < p
}

// deliver places msg in ep's inbox, applying latency. Returns false if
// the inbox was full or the endpoint closed.
func (n *Network) deliver(ep *Endpoint, msg Message, latency func() time.Duration) bool {
	if latency != nil {
		d := latency()
		if d > 0 {
			time.AfterFunc(d, func() { ep.push(msg) })
			return true // counted as sent; late drop still possible
		}
	}
	return ep.push(msg)
}

// Endpoint is one process's attachment to the SAN.
type Endpoint struct {
	net   *Network
	addr  Addr
	inbox chan Message

	mu      sync.Mutex
	closed  bool
	nextID  uint64
	pending map[uint64]chan Message
	groups  []string
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() Addr { return e.addr }

// Inbox returns the receive channel. The channel is closed when the
// endpoint closes.
func (e *Endpoint) Inbox() <-chan Message { return e.inbox }

// push attempts non-blocking delivery.
func (e *Endpoint) push(msg Message) bool {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return false
	}
	select {
	case e.inbox <- msg:
		e.mu.Unlock()
		return true
	default:
		e.mu.Unlock()
		return false
	}
}

// Close detaches the endpoint: it leaves all groups, unregisters the
// address, fails pending calls, and closes the inbox.
func (e *Endpoint) Close() {
	n := e.net
	n.mu.Lock()
	if n.endpoints[e.addr] == e {
		delete(n.endpoints, e.addr)
	}
	for _, g := range e.groupsLocked() {
		if members, ok := n.groups[g]; ok {
			delete(members, e.addr)
		}
	}
	n.mu.Unlock()
	e.closeLocked()
}

func (e *Endpoint) groupsLocked() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.groups...)
}

func (e *Endpoint) closeLocked() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	for id, ch := range e.pending {
		close(ch)
		delete(e.pending, id)
	}
	close(e.inbox)
	e.mu.Unlock()
}

// Join subscribes the endpoint to a multicast group.
func (e *Endpoint) Join(group string) {
	n := e.net
	n.mu.Lock()
	members := n.groups[group]
	if members == nil {
		members = make(map[Addr]*Endpoint)
		n.groups[group] = members
	}
	members[e.addr] = e
	n.mu.Unlock()
	e.mu.Lock()
	e.groups = append(e.groups, group)
	e.mu.Unlock()
}

// Leave unsubscribes the endpoint from a multicast group.
func (e *Endpoint) Leave(group string) {
	n := e.net
	n.mu.Lock()
	if members, ok := n.groups[group]; ok {
		delete(members, e.addr)
	}
	n.mu.Unlock()
	e.mu.Lock()
	for i, g := range e.groups {
		if g == group {
			e.groups = append(e.groups[:i], e.groups[i+1:]...)
			break
		}
	}
	e.mu.Unlock()
}

// Send delivers a point-to-point message. It returns ErrUnknownAddr if
// no endpoint holds the destination address; losses and partition
// drops are silent (datagram semantics), mirroring a real SAN.
func (e *Endpoint) Send(to Addr, kind string, body any, size int) error {
	return e.send(to, kind, body, size, 0, false)
}

func (e *Endpoint) send(to Addr, kind string, body any, size int, callID uint64, reply bool) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed // a dead process sends nothing
	}
	n := e.net
	n.mu.RLock()
	dst, ok := n.endpoints[to]
	lat := n.latency
	lossP := n.lossP
	same := n.samePartition(e.addr.Node, to.Node)
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownAddr, to)
	}
	if !same || n.chance(lossP) {
		n.dropped.Add(1)
		return nil
	}
	msg := Message{From: e.addr, To: to, Kind: kind, Body: body, Size: size, CallID: callID, Reply: reply}
	if n.deliver(dst, msg, lat) {
		n.sent.Add(1)
		n.bytes.Add(uint64(size))
	} else {
		n.dropped.Add(1)
	}
	return nil
}

// Multicast delivers a best-effort message to every group member
// except the sender. It returns the number of members the message was
// handed to (before loss).
func (e *Endpoint) Multicast(group, kind string, body any, size int) int {
	n := e.net
	n.mu.RLock()
	members := make([]*Endpoint, 0, len(n.groups[group]))
	for _, ep := range n.groups[group] {
		if ep.addr != e.addr {
			members = append(members, ep)
		}
	}
	lat := n.latency
	lossP := n.mcastLossP
	n.mu.RUnlock()
	delivered := 0
	for _, dst := range members {
		n.mcastSent.Add(1)
		n.mu.RLock()
		same := n.samePartition(e.addr.Node, dst.addr.Node)
		n.mu.RUnlock()
		if !same || n.chance(lossP) {
			n.mcastDropped.Add(1)
			continue
		}
		msg := Message{From: e.addr, Group: group, Kind: kind, Body: body, Size: size}
		if n.deliver(dst, msg, lat) {
			delivered++
			n.bytes.Add(uint64(size))
		} else {
			n.mcastDropped.Add(1)
		}
	}
	return delivered
}

// Call sends a request and waits for the matching reply or context
// cancellation. The component owning the destination endpoint must
// respond via Respond. The caller's receive loop must route reply
// messages through DeliverReply.
func (e *Endpoint) Call(ctx context.Context, to Addr, kind string, body any, size int) (Message, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return Message{}, ErrClosed
	}
	e.nextID++
	id := e.nextID
	ch := make(chan Message, 1)
	e.pending[id] = ch
	e.mu.Unlock()

	defer func() {
		e.mu.Lock()
		delete(e.pending, id)
		e.mu.Unlock()
	}()

	if err := e.send(to, kind, body, size, id, false); err != nil {
		return Message{}, err
	}
	select {
	case m, ok := <-ch:
		if !ok {
			return Message{}, ErrClosed
		}
		return m, nil
	case <-ctx.Done():
		return Message{}, fmt.Errorf("%w: %s to %s", ErrTimeout, kind, to)
	}
}

// DeliverReply routes a reply message to a waiting Call. It returns
// true if the message was consumed. Receive loops should call this
// first for every inbound message.
func (e *Endpoint) DeliverReply(msg Message) bool {
	if !msg.Reply || msg.CallID == 0 {
		return false
	}
	e.mu.Lock()
	ch, ok := e.pending[msg.CallID]
	if ok {
		delete(e.pending, msg.CallID)
	}
	e.mu.Unlock()
	if ok {
		ch <- msg
	}
	return true // replies are consumed even if the caller gave up
}

// Respond answers a request message received from Call.
func (e *Endpoint) Respond(req Message, kind string, body any, size int) error {
	return e.send(req.From, kind, body, size, req.CallID, true)
}
