package san

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSendCloseJoin races senders against endpoint churn:
// receivers continuously close/re-register and join/leave groups while
// senders blast point-to-point and multicast traffic at them. Under
// -race this exercises the copy-on-write snapshot swap against every
// mutator; without it, it still shakes out lost-wakeup and
// send-on-closed bugs.
func TestConcurrentSendCloseJoin(t *testing.T) {
	n := NewNetwork(1)
	const receivers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Churning receivers: register, drain briefly, close, repeat.
	for r := 0; r < receivers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ep := n.Endpoint(Addr{Node: fmt.Sprintf("rn%d", r), Proc: "rx"}, 64)
				ep.Join("grp")
				deadline := time.After(time.Millisecond)
			drain:
				for {
					select {
					case _, ok := <-ep.Inbox():
						if !ok {
							break drain
						}
					case <-deadline:
						break drain
					}
				}
				if i%2 == 0 {
					ep.Leave("grp")
				}
				ep.Close()
			}
		}()
	}

	// Senders: point-to-point at churning addresses plus multicast.
	for s := 0; s < 4; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := n.Endpoint(Addr{Node: "senders", Proc: fmt.Sprintf("tx%d", s)}, 8)
			for i := 0; i < 3000; i++ {
				to := Addr{Node: fmt.Sprintf("rn%d", i%receivers), Proc: "rx"}
				_ = src.Send(to, "d", i, 16) // unknown-addr errors expected mid-churn
				if i%8 == 0 {
					src.Multicast("grp", "beacon", i, 32)
				}
			}
		}()
	}

	// Impairment writers race the senders too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			n.SetLoss(float64(i%3)*0.1, 0.05)
			n.Partition(map[string]int{"rn0": i % 2})
			time.Sleep(100 * time.Microsecond)
		}
		n.Heal()
		n.SetLoss(0, 0)
	}()

	done := make(chan struct{})
	go func() {
		// Senders and impairment writer finish on their own; receivers
		// need the stop signal.
		wg.Wait()
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stress test wedged")
	}
}

// TestConcurrentDropNodeVsSend races node crashes against traffic.
func TestConcurrentDropNodeVsSend(t *testing.T) {
	n := NewNetwork(7)
	var wg sync.WaitGroup
	for round := 0; round < 20; round++ {
		dst := n.Endpoint(Addr{Node: "victim", Proc: "p"}, 1024)
		go func() {
			for range dst.Inbox() {
			}
		}()
		for s := 0; s < 4; s++ {
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				src := n.Endpoint(Addr{Node: "ok", Proc: fmt.Sprintf("s%d", s)}, 8)
				for i := 0; i < 50; i++ {
					_ = src.Send(Addr{Node: "victim", Proc: "p"}, "d", i, 8)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.DropNode("victim")
		}()
		wg.Wait()
	}
	if n.Lookup(Addr{Node: "victim", Proc: "p"}) {
		t.Fatal("victim survived DropNode")
	}
}

// TestDeterministicLossSequence pins the per-endpoint rng: the same
// (network seed, address) pair must produce the same loss decisions
// run over run — the property the figure experiments rely on.
func TestDeterministicLossSequence(t *testing.T) {
	run := func() []bool {
		n := NewNetwork(42)
		src := n.Endpoint(Addr{Node: "a", Proc: "s"}, 8)
		dst := n.Endpoint(Addr{Node: "b", Proc: "d"}, 4096)
		n.SetLoss(0.5, 0)
		out := make([]bool, 0, 200)
		for i := 0; i < 200; i++ {
			before := n.Stats().Sent
			if err := src.Send(dst.Addr(), "x", nil, 1); err != nil {
				t.Fatal(err)
			}
			out = append(out, n.Stats().Sent > before)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loss sequence diverged at %d", i)
		}
	}
}
