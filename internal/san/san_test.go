package san

import (
	"context"
	"sync"
	"testing"
	"time"
)

func addr(node, proc string) Addr { return Addr{Node: node, Proc: proc} }

func TestPointToPoint(t *testing.T) {
	n := NewNetwork(1)
	a := n.Endpoint(addr("n1", "a"), 8)
	b := n.Endpoint(addr("n2", "b"), 8)
	if err := a.Send(b.Addr(), "ping", "hello", 5); err != nil {
		t.Fatal(err)
	}
	msg := <-b.Inbox()
	if msg.Kind != "ping" || msg.Body.(string) != "hello" || msg.From != a.Addr() {
		t.Fatalf("bad message: %+v", msg)
	}
	s := n.Stats()
	if s.Sent != 1 || s.Bytes != 5 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSendUnknownAddr(t *testing.T) {
	n := NewNetwork(1)
	a := n.Endpoint(addr("n1", "a"), 8)
	err := a.Send(addr("nx", "ghost"), "ping", nil, 0)
	if err == nil {
		t.Fatal("expected ErrUnknownAddr")
	}
}

func TestMulticast(t *testing.T) {
	n := NewNetwork(1)
	a := n.Endpoint(addr("n1", "a"), 8)
	b := n.Endpoint(addr("n2", "b"), 8)
	c := n.Endpoint(addr("n3", "c"), 8)
	b.Join("ctl")
	c.Join("ctl")
	a.Join("ctl") // sender should not receive its own multicast
	if got := a.Multicast("ctl", "beacon", 7, 10); got != 2 {
		t.Fatalf("delivered = %d, want 2", got)
	}
	for _, ep := range []*Endpoint{b, c} {
		msg := <-ep.Inbox()
		if msg.Group != "ctl" || msg.Kind != "beacon" || msg.Body.(int) != 7 {
			t.Fatalf("bad multicast: %+v", msg)
		}
	}
	select {
	case m := <-a.Inbox():
		t.Fatalf("sender received own multicast: %+v", m)
	default:
	}
}

func TestLeaveGroup(t *testing.T) {
	n := NewNetwork(1)
	a := n.Endpoint(addr("n1", "a"), 8)
	b := n.Endpoint(addr("n2", "b"), 8)
	b.Join("ctl")
	b.Leave("ctl")
	if got := a.Multicast("ctl", "x", nil, 0); got != 0 {
		t.Fatalf("delivered after leave = %d", got)
	}
}

func TestPartitionDropsTraffic(t *testing.T) {
	n := NewNetwork(1)
	a := n.Endpoint(addr("n1", "a"), 8)
	b := n.Endpoint(addr("n2", "b"), 8)
	b.Join("ctl")
	n.Partition(map[string]int{"n1": 0, "n2": 1})
	if err := a.Send(b.Addr(), "ping", nil, 1); err != nil {
		t.Fatal(err) // silent drop, not an error
	}
	a.Multicast("ctl", "beacon", nil, 1)
	select {
	case m := <-b.Inbox():
		t.Fatalf("message crossed partition: %+v", m)
	case <-time.After(10 * time.Millisecond):
	}
	n.Heal()
	if err := a.Send(b.Addr(), "ping", nil, 1); err != nil {
		t.Fatal(err)
	}
	if msg := <-b.Inbox(); msg.Kind != "ping" {
		t.Fatalf("bad message after heal: %+v", msg)
	}
}

func TestLoss(t *testing.T) {
	n := NewNetwork(42)
	a := n.Endpoint(addr("n1", "a"), 4096)
	b := n.Endpoint(addr("n2", "b"), 4096)
	n.SetLoss(0.5, 0)
	const total = 2000
	for i := 0; i < total; i++ {
		if err := a.Send(b.Addr(), "d", i, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := len(b.Inbox())
	if got < total/3 || got > 2*total/3 {
		t.Fatalf("with 50%% loss, delivered %d/%d", got, total)
	}
}

func TestMulticastLoss(t *testing.T) {
	n := NewNetwork(42)
	a := n.Endpoint(addr("n1", "a"), 8)
	b := n.Endpoint(addr("n2", "b"), 4096)
	b.Join("ctl")
	n.SetLoss(0, 1.0)
	if got := a.Multicast("ctl", "x", nil, 1); got != 0 {
		t.Fatalf("delivered %d with 100%% mcast loss", got)
	}
	if n.Stats().McastDropped == 0 {
		t.Fatal("expected multicast drops counted")
	}
}

func TestCallRespond(t *testing.T) {
	n := NewNetwork(1)
	client := n.Endpoint(addr("n1", "client"), 8)
	server := n.Endpoint(addr("n2", "server"), 8)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for msg := range server.Inbox() {
			if msg.Kind == "add" {
				server.Respond(msg, "sum", msg.Body.(int)+1, 8)
				return
			}
		}
	}()
	// The client receive loop routes replies.
	go func() {
		for msg := range client.Inbox() {
			client.DeliverReply(msg)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	resp, err := client.Call(ctx, server.Addr(), "add", 41, 8)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "sum" || resp.Body.(int) != 42 {
		t.Fatalf("bad reply: %+v", resp)
	}
	<-done
}

func TestCallTimeout(t *testing.T) {
	n := NewNetwork(1)
	client := n.Endpoint(addr("n1", "client"), 8)
	n.Endpoint(addr("n2", "server"), 8) // never answers
	go func() {
		for msg := range client.Inbox() {
			client.DeliverReply(msg)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := client.Call(ctx, addr("n2", "server"), "add", 1, 8)
	if err == nil {
		t.Fatal("expected timeout")
	}
}

func TestCallToDeadEndpoint(t *testing.T) {
	n := NewNetwork(1)
	client := n.Endpoint(addr("n1", "client"), 8)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := client.Call(ctx, addr("nx", "ghost"), "add", 1, 8)
	if err == nil {
		t.Fatal("expected error calling unknown address")
	}
}

func TestLateReplyIsConsumedQuietly(t *testing.T) {
	n := NewNetwork(1)
	client := n.Endpoint(addr("n1", "client"), 8)
	server := n.Endpoint(addr("n2", "server"), 8)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	go func() {
		for msg := range client.Inbox() {
			if !client.DeliverReply(msg) {
				t.Error("late reply not consumed")
			}
		}
	}()
	_, err := client.Call(ctx, server.Addr(), "slow", nil, 0)
	if err == nil {
		t.Fatal("expected timeout")
	}
	// Server answers after the caller gave up.
	req := <-server.Inbox()
	if err := server.Respond(req, "late", nil, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
}

func TestDropNode(t *testing.T) {
	n := NewNetwork(1)
	a := n.Endpoint(addr("n1", "a"), 8)
	b := n.Endpoint(addr("n2", "b"), 8)
	b.Join("ctl")
	n.DropNode("n2")
	if n.Lookup(b.Addr()) {
		t.Fatal("endpoint survived node drop")
	}
	if err := a.Send(b.Addr(), "ping", nil, 0); err == nil {
		t.Fatal("expected unknown-address error after node drop")
	}
	if got := a.Multicast("ctl", "x", nil, 0); got != 0 {
		t.Fatalf("multicast reached dropped node: %d", got)
	}
	// The dropped endpoint's inbox is closed.
	if _, ok := <-b.Inbox(); ok {
		t.Fatal("inbox not closed after node drop")
	}
}

func TestReRegisterReplacesEndpoint(t *testing.T) {
	n := NewNetwork(1)
	old := n.Endpoint(addr("n1", "p"), 8)
	nu := n.Endpoint(addr("n1", "p"), 8)
	if _, ok := <-old.Inbox(); ok {
		t.Fatal("old endpoint not closed on re-register")
	}
	src := n.Endpoint(addr("n2", "src"), 8)
	if err := src.Send(addr("n1", "p"), "ping", nil, 0); err != nil {
		t.Fatal(err)
	}
	if msg := <-nu.Inbox(); msg.Kind != "ping" {
		t.Fatalf("new endpoint missed message: %+v", msg)
	}
}

func TestFullInboxDrops(t *testing.T) {
	n := NewNetwork(1)
	a := n.Endpoint(addr("n1", "a"), 8)
	b := n.Endpoint(addr("n2", "b"), 1)
	if err := a.Send(b.Addr(), "one", nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.Addr(), "two", nil, 0); err != nil {
		t.Fatal(err) // silently dropped
	}
	if n.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", n.Stats().Dropped)
	}
}

func TestLatency(t *testing.T) {
	n := NewNetwork(1)
	n.SetLatency(func() time.Duration { return 10 * time.Millisecond })
	a := n.Endpoint(addr("n1", "a"), 8)
	b := n.Endpoint(addr("n2", "b"), 8)
	start := time.Now()
	if err := a.Send(b.Addr(), "ping", nil, 0); err != nil {
		t.Fatal(err)
	}
	<-b.Inbox()
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
}

func TestConcurrentSendersRace(t *testing.T) {
	n := NewNetwork(1)
	dst := n.Endpoint(addr("n0", "sink"), 100000)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep := n.Endpoint(Addr{Node: "n1", Proc: "p" + string(rune('a'+g))}, 8)
			for i := 0; i < 500; i++ {
				_ = ep.Send(dst.Addr(), "d", i, 1)
			}
		}()
	}
	wg.Wait()
	if got := len(dst.Inbox()); got != 16*500 {
		t.Fatalf("received %d, want %d", got, 16*500)
	}
}

func TestCloseFailsPendingCalls(t *testing.T) {
	n := NewNetwork(1)
	client := n.Endpoint(addr("n1", "client"), 8)
	server := n.Endpoint(addr("n2", "server"), 8)
	errc := make(chan error, 1)
	go func() {
		ctx := context.Background()
		_, err := client.Call(ctx, server.Addr(), "never", nil, 0)
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	client.Close()
	if err := <-errc; err == nil {
		t.Fatal("pending call survived endpoint close")
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{Node: "n1", Proc: "fe0"}
	if a.String() != "n1/fe0" {
		t.Fatalf("String = %q", a.String())
	}
	if a.IsZero() || (Addr{}).IsZero() == false {
		t.Fatal("IsZero broken")
	}
}

func TestLossBurstRestoresPriorLoss(t *testing.T) {
	n := NewNetwork(1)
	a := n.Endpoint(addr("n1", "a"), 256)
	b := n.Endpoint(addr("n2", "b"), 256)

	n.SetLoss(0, 0)
	n.LossBurst(1, 1, 30*time.Millisecond) // drop everything briefly
	if err := a.Send(b.Addr(), "k", nil, 1); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats().Dropped; got != 1 {
		t.Fatalf("dropped = %d during burst", got)
	}
	// After the burst the pre-burst (lossless) config returns.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := a.Send(b.Addr(), "k", nil, 1); err != nil {
			t.Fatal(err)
		}
		select {
		case <-b.Inbox():
			return // delivered: loss restored to 0
		case <-time.After(5 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("loss never restored after burst")
		}
	}
}

func TestPartitionForHeals(t *testing.T) {
	n := NewNetwork(1)
	a := n.Endpoint(addr("n1", "a"), 256)
	b := n.Endpoint(addr("n2", "b"), 256)

	n.PartitionFor(map[string]int{"n2": 1}, 30*time.Millisecond)
	if err := a.Send(b.Addr(), "k", nil, 1); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats().Dropped; got != 1 {
		t.Fatalf("dropped = %d across partition", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := a.Send(b.Addr(), "k", nil, 1); err != nil {
			t.Fatal(err)
		}
		select {
		case <-b.Inbox():
			return // healed
		case <-time.After(5 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("partition never healed")
		}
	}
}
