package san

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestCallPropagatesTrace: a trace id attached to the Call context
// rides the delivered request (Message.Trace) and is echoed on the
// reply, exactly like the deadline convention.
func TestCallPropagatesTrace(t *testing.T) {
	n := NewNetwork(1)
	client := n.Endpoint(Addr{Node: "n1", Proc: "client"}, 8)
	server := n.Endpoint(Addr{Node: "n2", Proc: "server"}, 8)

	id := n.Tracer().NewTrace()
	seen := make(chan obs.TraceID, 1)
	go func() {
		for msg := range server.Inbox() {
			seen <- msg.Trace
			server.Respond(msg, "pong", nil, 0)
			return
		}
	}()
	go func() {
		for msg := range client.Inbox() {
			client.DeliverReply(msg)
		}
	}()

	ctx, cancel := context.WithTimeout(obs.WithTrace(context.Background(), id), time.Second)
	defer cancel()
	reply, err := client.Call(ctx, server.Addr(), "ping", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := <-seen; got != id {
		t.Fatalf("request trace = %v, want %v", got, id)
	}
	if reply.Trace != id {
		t.Fatalf("reply trace = %v, want %v", reply.Trace, id)
	}

	// Plain sends stay untraced.
	if err := client.Send(server.Addr(), "k", nil, 0); err != nil {
		t.Fatal(err)
	}
}

// TestInjectStampsTrace: a trace id arriving over the fabric is
// stamped on the delivered message.
func TestInjectStampsTrace(t *testing.T) {
	n, _ := wireNet(t)
	dst := n.Endpoint(Addr{Node: "n0", Proc: "dst"}, 8)
	from := Addr{Node: "other", Proc: "src"}
	if !n.InjectUnicast(from, dst.Addr(), "k", 7, false, obs.TraceID(0x55), []byte("p"), nil) {
		t.Fatal("inject failed")
	}
	select {
	case msg := <-dst.Inbox():
		if msg.Trace != obs.TraceID(0x55) {
			t.Fatalf("injected trace = %v, want 0x55", msg.Trace)
		}
	case <-time.After(time.Second):
		t.Fatal("delivery never arrived")
	}
}

// TestNetworkObsPlane: the network owns one tracer/registry pair and
// the san collector publishes its stats.
func TestNetworkObsPlane(t *testing.T) {
	n := NewNetwork(3)
	if n.Tracer() == nil || n.Registry() == nil {
		t.Fatal("network missing obs plane")
	}
	a := n.Endpoint(Addr{Node: "n0", Proc: "a"}, 8)
	b := n.Endpoint(Addr{Node: "n0", Proc: "b"}, 8)
	if a.Tracer() != n.Tracer() || a.Registry() != n.Registry() {
		t.Fatal("endpoint accessors must return the network's obs plane")
	}
	if err := a.Send(b.Addr(), "k", nil, 4); err != nil {
		t.Fatal(err)
	}
	<-b.Inbox()
	snap := n.Registry().Snapshot()
	if snap["san.sent"] != 1 {
		t.Fatalf("san.sent = %v, want 1 (snapshot %v)", snap["san.sent"], snap)
	}
}
