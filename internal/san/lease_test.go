package san

// Aliasing-safety tests for the zero-copy lease: the refcount must
// keep a live view's bytes stable while the pool churns underneath,
// and must turn the two corrupting mistakes (over-release, mutating a
// shared buffer) into immediate panics instead of silent reuse.

import (
	"bytes"
	"sync"
	"testing"
)

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestLeaseLifecycle(t *testing.T) {
	l := NewLease(64)
	if got := l.Refs(); got != 1 {
		t.Fatalf("fresh lease has %d refs, want 1", got)
	}
	if len(l.Bytes()) != 0 {
		t.Fatalf("fresh lease buffer not empty: %d bytes", len(l.Bytes()))
	}
	l.SetBytes(append(l.Bytes(), "payload"...))
	if string(l.Bytes()) != "payload" {
		t.Fatalf("SetBytes lost contents: %q", l.Bytes())
	}
	l.Retain()
	if got := l.Refs(); got != 2 {
		t.Fatalf("after retain: %d refs, want 2", got)
	}
	l.Release()
	if got := l.Refs(); got != 1 {
		t.Fatalf("after release: %d refs, want 1", got)
	}
	l.Release()
	if got := l.Refs(); got != 0 {
		t.Fatalf("after final release: %d refs, want 0", got)
	}
}

func TestLeaseDoubleReleasePanics(t *testing.T) {
	// A dedicated non-pooled-size buffer so the over-released lease
	// cannot sneak back into the pool and corrupt another test.
	l := NewLease(maxPooledLease + 1)
	l.Release()
	mustPanic(t, "double release", l.Release)
}

func TestLeaseRetainAfterReleasePanics(t *testing.T) {
	l := NewLease(maxPooledLease + 1)
	l.Release()
	mustPanic(t, "retain of a released lease", l.Retain)
}

func TestLeaseSetBytesSharedPanics(t *testing.T) {
	l := NewLease(16)
	l.Retain()
	mustPanic(t, "SetBytes on a shared lease", func() { l.SetBytes([]byte("x")) })
	l.Release()
	l.Release()
}

// TestLeaseViewStableUnderDirtyReuse is the property the whole design
// exists for: a retained view keeps its bytes while the producer
// releases and the pool cycles recycled buffers full of garbage.
func TestLeaseViewStableUnderDirtyReuse(t *testing.T) {
	l := NewLease(256)
	l.SetBytes(append(l.Bytes(), bytes.Repeat([]byte{0x5A}, 200)...))
	l.Retain() // the consumer's view reference
	view := l.Bytes()[50:150]
	l.Release() // the producer moves on

	// Churn the pool hard: every recycled buffer gets scribbled over.
	// If the refcount failed to keep our lease out of the pool, the
	// view would now alias one of these dirty buffers.
	for i := 0; i < 1000; i++ {
		g := NewLease(256)
		g.SetBytes(append(g.Bytes(), bytes.Repeat([]byte{byte(i)}, 256)...))
		g.Release()
	}

	for i, b := range view {
		if b != 0x5A {
			t.Fatalf("view byte %d corrupted to %#x while lease was held", i, b)
		}
	}
	gen := l.Generation()
	l.Release() // last reference: now recycling is allowed

	// If the pool hands the same lease object back, it must present as
	// fresh: new epoch, empty buffer. (sync.Pool makes no promise it
	// will, so only assert when it does.)
	if l2 := NewLease(256); l2 == l {
		if l2.Generation() == gen {
			t.Fatal("recycled lease kept its old generation")
		}
		if len(l2.Bytes()) != 0 {
			t.Fatal("recycled lease kept its old contents")
		}
		l2.Release()
	} else {
		l2.Release()
	}
}

// TestLeaseConcurrentViews: many concurrent holders read through their
// own retained references while releasing in arbitrary order — run
// under -race this checks the atomic refcount publishes the buffer
// safely and no release path mutates it early.
func TestLeaseConcurrentViews(t *testing.T) {
	const holders = 16
	l := NewLease(1024)
	l.SetBytes(append(l.Bytes(), bytes.Repeat([]byte{0xC3}, 1024)...))
	var wg sync.WaitGroup
	for i := 0; i < holders; i++ {
		l.Retain()
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			view := l.Bytes()[off : off+64]
			for _, b := range view {
				if b != 0xC3 {
					t.Errorf("concurrent view saw %#x", b)
					break
				}
			}
			l.Release()
		}(i * 64)
	}
	l.Release()
	wg.Wait()
}

func TestCloneBytes(t *testing.T) {
	if CloneBytes(nil) != nil {
		t.Fatal("CloneBytes(nil) != nil")
	}
	if CloneBytes([]byte{}) != nil {
		t.Fatal("CloneBytes(empty) != nil")
	}
	src := []byte("retain me")
	dup := CloneBytes(src)
	if !bytes.Equal(dup, src) {
		t.Fatalf("clone differs: %q", dup)
	}
	src[0] = 'X'
	if dup[0] == 'X' {
		t.Fatal("clone aliases its source")
	}
}
