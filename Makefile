# Developer entry points. CI runs the same targets.

GO ?= go

.PHONY: build test test-short race cover fuzz-smoke fuzz-frames smoke-multiprocess bench-snapshot bench-diff bench-wire bench-transport bench-blob chaos-soak

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race pass over the packages with real concurrency on the hot path.
race:
	$(GO) test -race -short ./internal/obs ./internal/san ./internal/vcache ./internal/frontend ./internal/edge ./internal/transport ./internal/chaos

# Coverage with the committed-baseline regression gate (satellite:
# fails if total coverage drops >2 points from coverage_baseline.txt).
cover:
	./scripts/coverage_check.sh

# Short fuzz smoke over the wire codec (CI runs this on every push).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzWireRoundTrip -fuzztime=15s ./internal/stub

# Fuzz the transport's streaming frame decoder (torn reads, corrupt
# CRCs, concatenated batches). CI runs this on every push.
fuzz-frames:
	$(GO) test -run='^$$' -fuzz=FuzzFrameRoundTrip -fuzztime=15s ./internal/transport

# Two OS processes over loopback TCP serving a TranSend workload:
# zero failed requests, zero wire errors, or the target fails.
smoke-multiprocess:
	./scripts/smoke_multiprocess.sh

# Write BENCH_<date>.json with the figure-benchmark metrics so the
# perf trajectory is a diffable artifact.
bench-snapshot:
	$(GO) run ./cmd/experiments -snapshot auto

# Regression gate: fresh snapshot vs the newest committed baseline;
# fails on >20% drift of any seed-deterministic metric. CI runs this.
bench-diff:
	./scripts/bench_diff.sh

# Only the codec/SAN wire benchmarks, for quick local iteration on the
# serialization hot path.
bench-wire:
	$(GO) test -run='^$$' -bench='Wire' -benchmem -count=1 ./internal/stub .

# Frame + bridge benchmarks: encode/decode cost and the batched-vs-
# unbatched socket send comparison.
bench-transport:
	$(GO) test -run='^$$' -bench='Frame|Bridge' -benchmem -count=1 .

# The zero-copy blob relay (FE→cache→FE over two bridges) at 4 KB /
# 64 KB / 512 KB — B/op and allocs/op are the copy count per request.
bench-blob:
	$(GO) test -run='^$$' -bench='BlobRelay' -benchmem -count=1 ./internal/transport

# The randomized kill-anything soak plus the full chaos suite.
chaos-soak:
	$(GO) test -count=1 -v -run 'TestSoak|TestScenario|TestSchedule' ./internal/chaos
