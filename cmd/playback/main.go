// Command playback generates synthetic HTTP traces calibrated to the
// paper's measurements (§4.1) and replays them against a live TranSend
// instance at controlled rates — the "high performance trace playback
// engine" used for all the load experiments.
//
//	playback -gen -out trace.jsonl -duration 10m        generate
//	playback -stats trace.jsonl                          summarize
//	playback -replay trace.jsonl -rate 50 -for 30s       constant rate
//	playback -replay trace.jsonl -speedup 60 -for 30s    faithful (60x)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/distiller"
	"repro/internal/manager"
	"repro/internal/sim"
	"repro/internal/tacc"
	"repro/internal/trace"
)

func main() {
	gen := flag.Bool("gen", false, "generate a trace")
	out := flag.String("out", "trace.jsonl", "output path for -gen")
	duration := flag.Duration("duration", 10*time.Minute, "trace duration for -gen")
	users := flag.Int("users", 8000, "user population for -gen")
	seed := flag.Int64("seed", 1, "random seed")
	statsPath := flag.String("stats", "", "summarize a trace file")
	replay := flag.String("replay", "", "replay a trace against a fresh TranSend instance")
	rate := flag.Float64("rate", 0, "constant-rate replay, req/s (0 = faithful)")
	speedup := flag.Float64("speedup", 1, "faithful-mode time compression")
	limit := flag.Duration("for", 30*time.Second, "replay time limit")
	flag.Parse()

	switch {
	case *gen:
		cfg := trace.DefaultConfig(*seed)
		cfg.Duration = *duration
		cfg.Users = *users
		records := trace.Generate(cfg)
		if err := trace.WriteFile(*out, records); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d records (%s of traffic) to %s\n", len(records), *duration, *out)
	case *statsPath != "":
		records, err := trace.ReadFile(*statsPath)
		if err != nil {
			log.Fatal(err)
		}
		summarize(records)
	case *replay != "":
		records, err := trace.ReadFile(*replay)
		if err != nil {
			log.Fatal(err)
		}
		replayTrace(records, *rate, *speedup, *limit)
	default:
		flag.Usage()
	}
}

func summarize(records []trace.Record) {
	if len(records) == 0 {
		fmt.Println("empty trace")
		return
	}
	span := records[len(records)-1].T - records[0].T
	mimes := map[string]int{}
	var sizes sim.Welford
	users := map[int]bool{}
	objects := map[int]bool{}
	for _, r := range records {
		mimes[r.MIME]++
		sizes.Add(float64(r.Size))
		users[r.User] = true
		objects[r.Object] = true
	}
	fmt.Printf("records:  %d over %s (%.1f req/s)\n", len(records), span.Round(time.Second),
		float64(len(records))/span.Seconds())
	fmt.Printf("users:    %d active, objects: %d unique\n", len(users), len(objects))
	fmt.Printf("sizes:    mean %.0f B, max %.0f B\n", sizes.Mean(), sizes.Max)
	fmt.Printf("mime mix:")
	for m, n := range mimes {
		fmt.Printf("  %s %.0f%%", m, 100*float64(n)/float64(len(records)))
	}
	fmt.Println()
	counts := trace.Bucketize(timestamps(records), 0, span, time.Minute)
	avg, peak := trace.BucketStats(counts, time.Minute)
	fmt.Printf("arrivals: avg %.1f req/s, peak %.1f req/s per minute bucket\n", avg, peak)
}

func timestamps(records []trace.Record) []time.Duration {
	out := make([]time.Duration, len(records))
	for i, r := range records {
		out[i] = r.T
	}
	return out
}

func replayTrace(records []trace.Record, rate, speedup float64, limit time.Duration) {
	registry := tacc.NewRegistry()
	distiller.RegisterAll(registry)
	sys, err := core.Start(core.Config{
		Seed:      1,
		FrontEnds: 2,
		Workers: map[string]int{
			distiller.ClassSGIF: 2,
			distiller.ClassSJPG: 2,
			distiller.ClassHTML: 1,
		},
		Registry: registry,
		Rules:    distiller.TranSendRules(),
		Policy: manager.Policy{
			SpawnThreshold: 10,
			Damping:        3 * time.Second,
			ReapThreshold:  0.5,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	if !sys.WaitReady(15 * time.Second) {
		log.Fatal("system did not come up")
	}

	ctx, cancel := context.WithTimeout(context.Background(), limit)
	defer cancel()
	player := &trace.Player{Concurrency: 256, Speedup: speedup}
	do := func(ctx context.Context, rec trace.Record) error {
		_, err := sys.Request(ctx, rec.URL, fmt.Sprintf("user%d", rec.User))
		return err
	}
	var st trace.Stats
	if rate > 0 {
		fmt.Printf("replaying %d records at a constant %.0f req/s (limit %s)...\n",
			len(records), rate, limit)
		st = player.PlayConstant(ctx, records, rate, do)
	} else {
		fmt.Printf("replaying %d records faithfully at %gx (limit %s)...\n",
			len(records), speedup, limit)
		st = player.PlayFaithful(ctx, records, do)
	}
	q := sim.Quantiles(st.Latencies, 0.5, 0.95, 0.99)
	fmt.Printf("issued %d requests in %s (%.1f req/s), %d errors\n",
		st.Issued, st.Elapsed.Round(time.Millisecond), st.Offered, st.Errors)
	fmt.Printf("latency: mean %.1f ms, p50 %.1f ms, p95 %.1f ms, p99 %.1f ms\n",
		st.Latency.Mean()*1000, q[0]*1000, q[1]*1000, q[2]*1000)
	for _, fe := range sys.FrontEnds() {
		fmt.Printf("%s stats: %+v\n", fe.ID(), fe.Stats())
	}
	fmt.Printf("manager: %+v\n", sys.Manager().Stats())
}
