package main

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/distiller"
	"repro/internal/manager"
	"repro/internal/media"
	"repro/internal/san"
	"repro/internal/search"
	"repro/internal/stub"
	"repro/internal/tacc"
	"repro/internal/trace"
)

// nullWorker is a no-op TACC worker for control-plane experiments.
type nullWorker struct{ class string }

func (w nullWorker) Class() string { return w.class }
func (w nullWorker) Process(ctx context.Context, task *tacc.Task) (tacc.Blob, error) {
	return task.Input, nil
}

// runMgrCap reproduces the §4.6 manager capacity experiment: 900
// distillers send a load announcement every half second (1800
// announcements/s); the manager must absorb them. With each distiller
// worth >20 req/s of service capacity, the manager is three orders of
// magnitude away from being the bottleneck.
func runMgrCap(seed int64) {
	const (
		workers        = 900
		reportInterval = 500 * time.Millisecond
		measureFor     = 4 * time.Second
	)
	net := san.NewNetwork(seed)
	m := manager.New(manager.Config{
		Node:           "mgr",
		Net:            net,
		BeaconInterval: reportInterval,
		WorkerTTL:      time.Hour,
		Policy:         manager.Policy{SpawnThreshold: 1e18, Damping: time.Hour, ReapThreshold: -1},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	fmt.Printf("spawning %d worker stubs reporting every %s...\n", workers, reportInterval)
	for i := 0; i < workers; i++ {
		ws := stub.NewWorkerStub(fmt.Sprintf("d%d", i), fmt.Sprintf("n%d", i%64),
			nullWorker{class: "distill"}, net,
			stub.WorkerConfig{ReportInterval: reportInterval})
		go ws.Run(ctx)
	}
	// Let registrations settle.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && m.Stats().Workers < workers {
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("registered: %d workers\n", m.Stats().Workers)

	before := m.Stats().ReportsHandled
	start := time.Now()
	time.Sleep(measureFor)
	elapsed := time.Since(start).Seconds()
	handled := float64(m.Stats().ReportsHandled-before) / elapsed

	fmt.Printf("load announcements handled: %.0f/s (offered %.0f/s)\n",
		handled, float64(workers)/reportInterval.Seconds())
	perDistiller := 20.0
	fmt.Printf("equivalent service capacity represented: %.0f req/s (paper: ~18000 req/s,\n",
		float64(workers)*perDistiller)
	fmt.Println("~3 orders of magnitude above the Berkeley modem pool's peak load)")
	if handled > 1700 {
		fmt.Println("PASS: manager sustained the paper's 1800 announcements/s without loss")
	} else {
		fmt.Printf("NOTE: handled %.0f/s on this host\n", handled)
	}
}

// runFaults demonstrates the §3.1.3 process-peer matrix on the live
// system: worker crash, manager crash, front-end crash — each detected
// and repaired while requests keep flowing.
func runFaults(seed int64) {
	registry := tacc.NewRegistry()
	distiller.RegisterAll(registry)
	sys, err := core.Start(core.Config{
		Seed:           seed,
		DedicatedNodes: 6,
		FrontEnds:      1,
		CacheParts:     2,
		Workers:        map[string]int{distiller.ClassSJPG: 2},
		Registry:       registry,
		Rules:          distiller.TranSendRules(),
		BeaconInterval: 50 * time.Millisecond,
		ReportInterval: 50 * time.Millisecond,
		Policy:         manager.Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1},
	})
	if err != nil {
		fmt.Println("start:", err)
		return
	}
	defer sys.Stop()
	if !sys.WaitReady(10 * time.Second) {
		fmt.Println("system did not come up")
		return
	}
	ctx := context.Background()
	probe := func() (string, error) {
		r, err := sys.Request(ctx, trace.ObjectURL(rand.Int()%100000, media.MIMESJPG), "u")
		if err != nil {
			return "", err
		}
		return r.Source, nil
	}

	fmt.Println("--- worker crash ---")
	victim := ""
	wait := time.Now().Add(5 * time.Second)
	for victim == "" && time.Now().Before(wait) {
		for _, w := range sys.FrontEnds()[0].ManagerStub().Workers(distiller.ClassSJPG) {
			victim = w.ID
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	t0 := time.Now()
	sys.KillWorker(victim)
	fmt.Printf("t=0       killed %s (no deregistration — crash)\n", victim)
	src, err := probe()
	fmt.Printf("t=%-7s request served via %q (err=%v)\n", time.Since(t0).Round(time.Millisecond), src, err)
	for time.Now().Before(t0.Add(10 * time.Second)) {
		if sys.Manager().Stats().Spawns > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("t=%-7s manager inferred the loss by timeout and spawned a replacement\n",
		time.Since(t0).Round(time.Millisecond))

	fmt.Println("--- manager crash ---")
	old := sys.Manager()
	t0 = time.Now()
	sys.KillManager()
	src, err = probe()
	fmt.Printf("t=%-7s request served via %q off cached beacons (err=%v)\n",
		time.Since(t0).Round(time.Millisecond), src, err)
	for time.Now().Before(t0.Add(10 * time.Second)) {
		if sys.Manager() != old && sys.Manager().Stats().Workers >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("t=%-7s front-end watchdog restarted the manager; %d workers re-registered\n",
		time.Since(t0).Round(time.Millisecond), sys.Manager().Stats().Workers)

	fmt.Println("--- front-end crash ---")
	t0 = time.Now()
	sys.KillFrontEnd("fe0")
	for time.Now().Before(t0.Add(10 * time.Second)) {
		fes := sys.FrontEnds()
		if len(fes) == 1 && fes[0].Running() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	src, err = probe()
	fmt.Printf("t=%-7s manager restarted fe0; request served via %q (err=%v)\n",
		time.Since(t0).Round(time.Millisecond), src, err)
	fmt.Println("\npaper §3.1.3: manager, distillers and front ends are process peers; soft")
	fmt.Println("state rebuilt from beacons means no recovery protocol anywhere")
}

// runHotBot reproduces the §3.2 behaviours: parallel fan-out latency,
// graceful degradation under node loss (fast-restart), and 100%
// availability with cross-mounted replicas.
func runHotBot(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const docsN = 54000 // 54M documents at 1:1000 scale
	fmt.Printf("corpus: %d docs (54M at 1:1000 scale), 26 partitions as in HotBot\n\n", docsN)
	docs := search.GenerateCorpus(rng, docsN, 5000)

	for _, mode := range []search.FailureMode{search.FastRestart, search.CrossMount} {
		net := san.NewNetwork(seed)
		cl := cluster.New(net)
		for i := 0; i < 26; i++ {
			cl.AddNode(fmt.Sprintf("n%d", i), false)
		}
		engine, err := search.Deploy(search.Config{
			Net: net, Cluster: cl, Partitions: 26, Mode: mode, Seed: seed,
		}, docs)
		if err != nil {
			fmt.Println("deploy:", err)
			return
		}
		ctx := context.Background()

		start := time.Now()
		res := engine.Query(ctx, "ba de ka", 10)
		lat := time.Since(start)
		fmt.Printf("[%s] query over %d shards: %d hits, %v, full corpus (%d docs)\n",
			mode, res.ShardsAsked, len(res.Hits), lat.Round(time.Microsecond), res.DocsSearched)

		cl.KillNode("n7")
		res = engine.Query(ctx, "bi du", 10)
		fmt.Printf("[%s] after losing 1 of 26 nodes: %d of %d docs searched (%.1f%%), partial=%v\n",
			mode, res.DocsSearched, res.TotalDocs,
			100*float64(res.DocsSearched)/float64(res.TotalDocs), res.Partial)
		if mode == search.FastRestart {
			fmt.Printf("    paper: 54M -> ~51M documents, 'still significantly larger than\n")
			fmt.Printf("    other search engines (Alta Vista at 30M)'\n")
		} else {
			fmt.Printf("    paper (original Inktomi): cross-mounted databases kept 100%% data\n")
			fmt.Printf("    availability with graceful performance degradation (fallbacks=%d)\n",
				engine.Stats().ReplicaFallbacks)
		}
		cl.StopAll()
		fmt.Println()
	}
}

// runTable1 verifies Table 1's structural comparison by inspecting the
// two live implementations.
func runTable1(seed int64) {
	rows := []struct{ component, transend, hotbot string }{
		{"Load balancing", "dynamic, by queue lengths at workers (lottery over beacon hints)", "static partitioning of read-only data; every query to all workers"},
		{"Application layer", "composable TACC workers (internal/distiller via internal/tacc)", "fixed search application (internal/search)"},
		{"Service layer", "worker dispatch rules in the front end (distiller.TranSendRules)", "dynamic result-page generation (search.RenderResults)"},
		{"Failure management", "centralized, fault-tolerant manager with process peers", "distributed per node: replicas or fast restart (FailureMode)"},
		{"Worker placement", "workers run anywhere; FEs and caches bound to nodes", "all workers bound to their partitions' nodes"},
		{"Profile database", "WAL-backed store with FE read caches (internal/profiledb)", "parallel commercial DB (same ACID island, scaled)"},
		{"Caching", "pre- and post-transformation web data (internal/vcache)", "recent searches for incremental delivery (search result cache)"},
	}
	fmt.Printf("%-20s %-55s %s\n", "Component", "TranSend", "HotBot")
	fmt.Println(strings.Repeat("-", 140))
	for _, r := range rows {
		fmt.Printf("%-20s %-55s %s\n", r.component, r.transend, r.hotbot)
	}

	// Live verification of the two headline differences.
	fmt.Println("\nverifying structural claims against the implementations:")
	// (1) TranSend dispatch is dynamic: two identical workers share
	// load via the lottery.
	registry := tacc.NewRegistry()
	distiller.RegisterAll(registry)
	sys, err := core.Start(core.Config{
		Seed: seed, FrontEnds: 1, CacheParts: 1,
		Workers:        map[string]int{distiller.ClassSJPG: 2},
		Registry:       registry,
		Rules:          distiller.TranSendRules(),
		BeaconInterval: 30 * time.Millisecond,
		ReportInterval: 30 * time.Millisecond,
		Policy:         manager.Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1},
	})
	if err == nil && sys.WaitReady(10*time.Second) {
		ctx := context.Background()
		for i := 0; i < 30; i++ {
			sys.Request(ctx, trace.ObjectURL(200000+i, media.MIMESJPG), "u")
		}
		fmt.Printf("  TranSend: %d interchangeable sjpg workers served 30 requests dynamically\n",
			len(sys.FrontEnds()[0].ManagerStub().Workers(distiller.ClassSJPG)))
		sys.Stop()
	}
	// (2) HotBot fan-out is static: every query touches all shards.
	rng := rand.New(rand.NewSource(seed))
	net := san.NewNetwork(seed)
	cl := cluster.New(net)
	for i := 0; i < 4; i++ {
		cl.AddNode(fmt.Sprintf("n%d", i), false)
	}
	engine, err := search.Deploy(search.Config{Net: net, Cluster: cl, Partitions: 4, Seed: seed},
		search.GenerateCorpus(rng, 2000, 500))
	if err == nil {
		res := engine.Query(context.Background(), "ba", 5)
		fmt.Printf("  HotBot: query fanned out to %d/%d statically placed shards\n",
			res.ShardsAlive, res.ShardsAsked)
		cl.StopAll()
	}
}
