package main

// Bench-regression gate: diff two BENCH_*.json snapshots and fail
// (exit 1) when a seed-deterministic metric drifts more than the
// tolerance from the committed baseline. Wall-clock metrics (ns/op,
// distiller ms/KB, recovery latency) vary with the host, so they are
// printed for the trajectory but never gated; structural metrics and
// allocs/op are pure functions of the seed and the code, so any
// drift there is a real change.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// gatedMetrics lists the seed-deterministic metrics and the relative
// drift each tolerates (0.20 = fail beyond ±20%).
var gatedMetrics = map[string]float64{
	"fig5_gif_mean_bytes":         0.20,
	"fig6_arrivals_per_hour":      0.20,
	"fig8_spawns_per_run":         0.20,
	"table2_req_s_per_distiller":  0.20,
	"cache_hit_rate":              0.20,
	"oscillation_spread_ratio":    0.20,
	"sansat_beacon_loss":          0.20,
	"wire_encode_append_allocs":   0.20,
	"wire_decode_allocs":          0.20,
	"san_send_passthrough_allocs": 0.20,
	"san_send_wire_allocs":        0.20,
	"partition_get_allocs":        0.20,
	// Transport framing: steady-state encode and the zero-copy
	// streaming decode both stay at 0 allocs/op (zeroSlack guards a
	// zero baseline — a regression to >=1 alloc/op means the
	// alloc-free append or buffer reuse broke).
	"frame_encode_allocs": 0.20,
	"frame_decode_allocs": 0.20,
	// Bridged send: the per-frame cost of the socket data plane. The
	// remaining allocs are the decoded body's owned strings; anything
	// above that means frame scratch pooling or the vectored path
	// regressed.
	"bridge_send_batched_allocs": 0.20,
	// Blob relay (FE→cache→FE over two bridges): allocs at every size,
	// plus allocated bytes at the sizes where B/op is the copy count
	// ("at most one body copy per hop" = B/op stays far below the body
	// size). Bytes get a looser tolerance: amortized pool misses and
	// GC timing put real variance on small absolute values.
	"blob_relay_4k_allocs":   0.20,
	"blob_relay_64k_allocs":  0.20,
	"blob_relay_512k_allocs": 0.20,
	"blob_relay_64k_bytes":   0.50,
	"blob_relay_512k_bytes":  0.50,
}

// zeroSlack is the absolute drift every gated metric tolerates before
// the relative gate applies. Relative drift is undefined at a zero
// baseline and meaningless next to it: amortized pool misses put
// allocs/op values like 2e-7 in the snapshots, where run-to-run noise
// is a large multiple of the value itself. Any real regression of the
// metrics this guards — an alloc-free path regressing to ≥1 alloc/op —
// clears half an alloc with room to spare.
const zeroSlack = 0.5

func loadSnapshot(path string) (BenchSnapshot, error) {
	var snap BenchSnapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return snap, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

// runBenchDiff compares a fresh snapshot against the baseline and
// returns the number of gated regressions.
func runBenchDiff(basePath, freshPath string) (int, error) {
	base, err := loadSnapshot(basePath)
	if err != nil {
		return 0, err
	}
	fresh, err := loadSnapshot(freshPath)
	if err != nil {
		return 0, err
	}
	fmt.Printf("bench diff: baseline %s (%s) vs fresh %s (%s)\n\n", basePath, base.Date, freshPath, fresh.Date)
	fmt.Printf("%-30s %14s %14s %9s  %s\n", "metric", "baseline", "fresh", "drift", "verdict")

	keys := make([]string, 0, len(base.Metrics))
	for k := range base.Metrics {
		keys = append(keys, k)
	}
	for k := range fresh.Metrics {
		if _, ok := base.Metrics[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	failures := 0
	for _, k := range keys {
		old, hasOld := base.Metrics[k]
		cur, hasCur := fresh.Metrics[k]
		tol, gated := gatedMetrics[k]
		switch {
		case !hasOld:
			verdict := "new metric (ungated)"
			if gated {
				// A gated metric with no baseline would silently
				// disable its own gate; force a baseline refresh.
				verdict = "FAIL: gated metric has no baseline (refresh BENCH_*.json)"
				failures++
			}
			fmt.Printf("%-30s %14s %14.4g %9s  %s\n", k, "-", cur, "-", verdict)
		case !hasCur:
			verdict := "dropped (ungated)"
			if gated {
				verdict = "FAIL: gated metric missing"
				failures++
			}
			fmt.Printf("%-30s %14.4g %14s %9s  %s\n", k, old, "-", "-", verdict)
		default:
			var drift float64
			if old != 0 {
				drift = (cur - old) / math.Abs(old)
			}
			verdict := "ok (ungated)"
			if gated {
				verdict = "ok"
				exceeded := math.Abs(drift) > tol && math.Abs(cur-old) > zeroSlack
				if exceeded {
					verdict = fmt.Sprintf("FAIL: beyond ±%.0f%%", tol*100)
					failures++
				}
			}
			fmt.Printf("%-30s %14.4g %14.4g %+8.1f%%  %s\n", k, old, cur, drift*100, verdict)
		}
	}
	if failures > 0 {
		fmt.Printf("\n%d gated metric(s) regressed beyond tolerance\n", failures)
	} else {
		fmt.Println("\nall gated metrics within tolerance")
	}
	return failures, nil
}
