package main

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/distiller"
	"repro/internal/media"
	"repro/internal/sim"
	"repro/internal/snsim"
	"repro/internal/tacc"
	"repro/internal/trace"
)

// runFig5 reproduces Figure 5: probability mass of content lengths per
// MIME type on a log-x axis, plus the caption's averages (HTML 5131,
// GIF 3428, JPEG 12070).
func runFig5(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	models := []*trace.SizeModel{trace.HTMLSizes(), trace.GIFSizes(), trace.JPEGSizes()}
	names := []string{"HTML", "GIF", "JPG"}
	const samples = 200000

	hists := make([]*sim.Histogram, len(models))
	means := make([]sim.Welford, len(models))
	for i, m := range models {
		hists[i] = sim.NewLogHistogram(64, 1<<21, 44)
		for j := 0; j < samples; j++ {
			v := float64(m.Sample(rng))
			hists[i].Add(v)
			means[i].Add(v)
		}
	}
	fmt.Printf("%-10s", "size(B)")
	for _, n := range names {
		fmt.Printf(" %-24s", n)
	}
	fmt.Println()
	for bin := 0; bin < 44; bin += 2 {
		fmt.Printf("%-10.0f", hists[0].BinCenter(bin))
		for i := range hists {
			p := hists[i].Probability(bin) + hists[i].Probability(bin+1)
			bar := int(p * 400)
			if bar > 24 {
				bar = 24
			}
			fmt.Printf(" %-24s", strings.Repeat("#", bar))
		}
		fmt.Println()
	}
	fmt.Printf("\nAverage content lengths (paper: HTML 5131 B, GIF 3428 B, JPEG 12070 B):\n")
	for i, n := range names {
		fmt.Printf("  %-5s %6.0f B\n", n, means[i].Mean())
	}
	below, above := 0, 0
	gif := trace.GIFSizes()
	for i := 0; i < 50000; i++ {
		if gif.Sample(rng) < 1024 {
			below++
		} else {
			above++
		}
	}
	fmt.Printf("GIF bimodality: %.0f%% below the 1 KB distillation threshold, %.0f%% above\n",
		100*float64(below)/50000, 100*float64(above)/50000)
}

// runFig6 reproduces Figure 6: request arrivals bucketized at three
// time scales showing burstiness at every scale.
func runFig6(seed int64) {
	model := trace.DefaultArrivals(seed)
	rng := rand.New(rand.NewSource(seed))
	times := model.Generate(rng, 0, 24*time.Hour)

	type panel struct {
		label  string
		start  time.Duration
		span   time.Duration
		bucket time.Duration
	}
	panels := []panel{
		{"(a) 24 hours, 2-min buckets", 0, 24 * time.Hour, 2 * time.Minute},
		{"(b) 3 h 20 m, 30-s buckets", 14 * time.Hour, 200 * time.Minute, 30 * time.Second},
		{"(c) 3 m 20 s, 1-s buckets", 16 * time.Hour, 200 * time.Second, time.Second},
	}
	fmt.Printf("total arrivals: %d over 24 h (paper trace: ~5.8 req/s average)\n\n", len(times))
	for _, p := range panels {
		counts := trace.Bucketize(times, p.start, p.start+p.span, p.bucket)
		avg, peak := trace.BucketStats(counts, p.bucket)
		vals := make([]float64, len(counts))
		for i, c := range counts {
			vals[i] = float64(c)
		}
		fmt.Printf("%s: avg %.1f req/s, peak %.1f req/s (peak/avg %.1fx)\n",
			p.label, avg, peak, peak/avg)
		fmt.Printf("  |%s|\n\n", sparkline(vals, 64))
	}
	fmt.Println("paper figure 6: (a) 5.8 avg / 12.6 max, (b) 5.6 avg / 10.3 peak, (c) 8.1 avg / 20 peak")
}

// runFig7 reproduces Figure 7 by measuring the real SGIF distiller:
// latency as a function of input size, expected ~linear (the paper
// measured ~8 ms/KB on 1997 hardware; the slope scales with CPU speed
// but the shape is the claim).
func runFig7(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	w := distiller.SGIFDistiller{}
	gif := trace.GIFSizes()

	type obs struct{ kb, ms float64 }
	var all []obs
	const trials = 1500
	for i := 0; i < trials; i++ {
		target := gif.Sample(rng)
		if target < 1200 {
			continue // below the distillation threshold
		}
		data := media.GenerateContent(rng, media.MIMESGIF, target)
		task := &tacc.Task{Input: tacc.Blob{MIME: media.MIMESGIF, Data: data}}
		start := time.Now()
		if _, err := w.Process(nil, task); err != nil {
			continue
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		all = append(all, obs{kb: float64(len(data)) / 1024, ms: ms})
	}

	// Bin by size and fit a least-squares slope.
	fmt.Printf("%-12s %-10s %-8s\n", "input (KB)", "mean (ms)", "n")
	bins := map[int][]float64{}
	for _, o := range all {
		bins[int(o.kb/4)] = append(bins[int(o.kb/4)], o.ms)
	}
	var sumX, sumY, sumXY, sumXX float64
	for _, o := range all {
		sumX += o.kb
		sumY += o.ms
		sumXY += o.kb * o.ms
		sumXX += o.kb * o.kb
	}
	n := float64(len(all))
	slope := (n*sumXY - sumX*sumY) / (n*sumXX - sumX*sumX)
	binKeys := make([]int, 0, len(bins))
	for k := range bins {
		binKeys = append(binKeys, k)
	}
	sort.Ints(binKeys)
	for _, k := range binKeys {
		var w sim.Welford
		for _, v := range bins[k] {
			w.Add(v)
		}
		fmt.Printf("%-12s %-10.2f %-8d\n", fmt.Sprintf("%d-%d", k*4, k*4+4), w.Mean(), w.N)
	}
	fmt.Printf("\nfitted slope: %.3f ms/KB over %d distillations\n", slope, len(all))
	fmt.Println("paper: ~8 ms/KB on a 1997 SPARC (absolute value is hardware-bound;")
	fmt.Println("the reproduced claim is the linear relationship with size)")
}

// runFig8 reproduces Figure 8: distiller queue lengths over time as
// load ramps, with the manual kill of distillers 1 and 2 at t=250 s.
func runFig8(seed int64) {
	res := snsim.RunFigure8(seed)
	fmt.Printf("policy: H=%.0f, D=%s; offered load ramps 0 -> 40 task/s over %s\n\n",
		res.Policy.SpawnThreshold, res.Policy.Damping, res.Horizon)

	fmt.Printf("%-8s %-8s %-12s %s\n", "t(s)", "load", "distillers", "queue lengths")
	for i, s := range res.Samples {
		if i%20 != 0 && !near(s.T, res.KillAt) {
			continue
		}
		var qs []string
		for _, id := range sortedKeys(s.QueueLens) {
			qs = append(qs, fmt.Sprintf("d%d:%d", id, s.QueueLens[id]))
		}
		marker := ""
		if near(s.T, res.KillAt) {
			marker = "   <-- distillers 0,1 killed"
		}
		fmt.Printf("%-8.0f %-8.1f %-12d %s%s\n",
			s.T.Seconds(), s.Offered, s.NDistillers, strings.Join(qs, " "), marker)
	}
	fmt.Println("\nspawn events:")
	for _, sp := range res.Spawns {
		kind := "dedicated"
		if sp.Overflow {
			kind = "overflow"
		}
		fmt.Printf("  t=%-6.0fs distiller %d (%s, %s)\n", sp.T.Seconds(), sp.ID, kind, sp.Reason)
	}
	// Max-queue sparkline over the whole run.
	var maxq []float64
	for _, s := range res.Samples {
		mx := 0
		for _, q := range s.QueueLens {
			if q > mx {
				mx = q
			}
		}
		maxq = append(maxq, float64(mx))
	}
	fmt.Printf("\nmax queue over time: |%s|\n", sparkline(maxq, 64))
	fmt.Println("paper figure 8: spawns as queues cross H; kill at t~250s; new distiller")
	fmt.Println("started immediately; balanced within ~5s of each spawn")
}

func near(t, target time.Duration) bool {
	d := t - target
	if d < 0 {
		d = -d
	}
	return d < 500*time.Millisecond
}

// runTable2 reproduces the Table 2 sweep.
func runTable2(seed int64) {
	res := snsim.RunTable2(seed)
	fmt.Print(res.Render())
	fmt.Println("\npaper table 2: 0-24/1FE/1D, 25-47/1FE/2D, 48-72/1FE/3D, 73-87/1FE/4D (FE")
	fmt.Println("saturates), 88-91/2FE/4D, 92-112/2FE/5D, 113-135/2FE/6D, 136-159/3FE/7D;")
	fmt.Println("~23 req/s per distiller, ~70 req/s per FE link — linear growth throughout")
}

// runCache reproduces the §4.4 cache partition measurements.
func runCache(seed int64) {
	res := snsim.RunCacheService(seed)
	fmt.Printf("per-partition hit service:   mean %.1f ms (paper: 27 ms)\n", res.MeanHitMs)
	fmt.Printf("95th percentile hit:         %.1f ms (paper: 95%% under 100 ms)\n", res.P95HitMs)
	fmt.Printf("implied partition capacity:  %.1f req/s (paper: ~37 req/s)\n", res.MaxRatePerS)
	fmt.Printf("miss penalty range:          %.2f s .. %.1f s, median %.2f s (paper: 0.1-100 s)\n",
		res.MissMinS, res.MissMaxS, res.MissMedianS)
	fmt.Println("conclusion (paper): the miss penalty dominates end-to-end latency, so")
	fmt.Println("minimizing miss rate matters more than optimizing the hit path")
}

// runCacheCurve reproduces the §4.4 LRU simulations.
func runCacheCurve(seed int64) {
	fmt.Println("hit rate vs cache size (population 8000, paper: plateau ~56% at 6 GB):")
	fmt.Printf("%-10s %-10s %-14s\n", "cache(GB)", "hit rate", "unique bytes")
	for _, gb := range []float64{0.5, 1, 2, 4, 6, 8, 12} {
		r := snsim.RunCacheCurve(snsim.CacheCurveParams{
			Seed:       seed,
			Users:      8000,
			CacheBytes: int64(gb * float64(1<<30)),
		})
		fmt.Printf("%-10.1f %-10.3f %.1f GB\n", gb, r.HitRate, float64(r.UniqueBytes)/float64(1<<30))
	}
	fmt.Println("\nhit rate vs population (cache 6 GB; paper: rises with population until")
	fmt.Println("the working-set sum exceeds the cache):")
	fmt.Printf("%-12s %-10s %-14s\n", "users", "hit rate", "unique bytes")
	for _, users := range []int{1000, 2000, 4000, 8000, 16000, 32000} {
		r := snsim.RunCacheCurve(snsim.CacheCurveParams{
			Seed:       seed,
			Users:      users,
			CacheBytes: 6 << 30,
		})
		fmt.Printf("%-12d %-10.3f %.1f GB\n", users, r.HitRate, float64(r.UniqueBytes)/float64(1<<30))
	}
}

// runOscillation reproduces the §4.5 ablation.
func runOscillation(seed int64) {
	raw := snsim.RunOscillation(seed, false)
	fixed := snsim.RunOscillation(seed, true)
	fmt.Printf("%-28s %-14s %-14s\n", "estimator", "queue spread", "leader switches/min")
	fmt.Printf("%-28s %-14.2f %-14.1f\n", "raw stale reports (pre-fix)", raw.Spread, raw.SwitchRate)
	fmt.Printf("%-28s %-14.2f %-14.1f\n", "queue-delta estimation", fixed.Spread, fixed.SwitchRate)
	fmt.Printf("\nreduction: %.1fx in spread\n", raw.Spread/fixed.Spread)
	fmt.Println("paper §4.5: stale reports caused rapid oscillations; keeping a running")
	fmt.Println("estimate of queue-length change between reports eliminated them")
}

// runSANSat reproduces the §4.6 saturation study.
func runSANSat(seed int64) {
	fmt.Printf("%-22s %-12s %-10s %-10s %-10s\n",
		"SAN", "beacon loss", "p95 (s)", "spawns", "req/s")
	for _, c := range []struct {
		label string
		mbps  float64
		iso   bool
	}{
		{"10 Mb/s shared", 10, false},
		{"100 Mb/s shared", 100, false},
		{"10 Mb/s + utility net", 10, true},
	} {
		r := snsim.RunSANSaturation(seed, c.mbps, c.iso)
		fmt.Printf("%-22s %-12.2f %-10.2f %-10d %-10.1f\n",
			c.label, r.BeaconLossRate, r.P95LatencyS, r.Spawns, r.CompletedPerS)
	}
	fmt.Println("\npaper §4.6: on a 10 Mb/s SAN most multicast control traffic dropped,")
	fmt.Println("crippling load balancing; a low-speed utility network isolating control")
	fmt.Println("traffic (or a faster SAN) avoids it")
}

// runEcon reproduces §5.2's arithmetic.
func runEcon(seed int64) {
	res := snsim.RunEconomics(23)
	fmt.Printf("server cost:            $%.0f\n", res.ServerCostUSD)
	fmt.Printf("modems supported:       %d (paper: ~750 per server)\n", res.ModemsSupported)
	fmt.Printf("subscribers (%d:1):     %d (paper: ~15000)\n", res.SubscriberRatio, res.Subscribers)
	fmt.Printf("cost per user per month: $%.2f (paper: ~$0.25)\n", res.CostPerUserMonth)
	fmt.Printf("cache savings per month: $%.0f (1-2 T1 lines at >=50%% hit rate)\n", res.CacheSavingsMonth)
	fmt.Printf("payback period:          %.1f months (paper: ~2)\n", res.PaybackMonths)
}

// runThreshold reproduces the design rationale for the 1 KB
// distillation threshold (§4.1): distill real SGIF objects across the
// size spectrum and measure the size change — below ~1 KB,
// distillation rarely shrinks anything (headers and palette dominate),
// so TranSend passes such objects through unmodified.
func runThreshold(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	w := distiller.SGIFDistiller{}
	buckets := []struct {
		label    string
		lo, hi   int
		n        int
		shrunk   int
		inBytes  int
		outBytes int
	}{
		{label: "<=512B", lo: 100, hi: 512},
		{label: "512B-1KB", lo: 512, hi: 1024},
		{label: "1-2KB", lo: 1024, hi: 2048},
		{label: "2-4KB", lo: 2048, hi: 4096},
		{label: "4-16KB", lo: 4096, hi: 16384},
		{label: "16-64KB", lo: 16384, hi: 65536},
	}
	for bi := range buckets {
		b := &buckets[bi]
		for i := 0; i < 60; i++ {
			target := b.lo + rng.Intn(b.hi-b.lo)
			data := media.GenerateContent(rng, media.MIMESGIF, target)
			task := &tacc.Task{
				Input:  tacc.Blob{MIME: media.MIMESGIF, Data: data},
				Params: map[string]string{"minsize": "0"}, // force distillation
			}
			out, err := w.Process(nil, task)
			if err != nil {
				continue
			}
			b.n++
			b.inBytes += len(data)
			b.outBytes += out.Size()
			if out.Size() < len(data) {
				b.shrunk++
			}
		}
	}
	fmt.Printf("%-10s %-8s %-14s %-12s\n", "size", "n", "shrunk by >0B", "avg ratio")
	for _, b := range buckets {
		if b.n == 0 {
			continue
		}
		fmt.Printf("%-10s %-8d %-14s %.2fx\n",
			b.label, b.n,
			fmt.Sprintf("%.0f%%", 100*float64(b.shrunk)/float64(b.n)),
			float64(b.inBytes)/float64(b.outBytes))
	}
	fmt.Println("\npaper §4.1: \"data under 1 KB is transferred to the client unmodified,")
	fmt.Println("since distillation of such small content rarely results in a size")
	fmt.Println("reduction\". Deviation: real GIFs carry a fixed header+palette floor")
	fmt.Println("(~800 B) that our synthetic codec lacks, so small objects here still")
	fmt.Println("compress. The threshold remains the right policy on latency grounds:")
	fmt.Println("a sub-1 KB object saves at most ~800 B (~0.2 s at 28.8 kbps) — less")
	fmt.Println("than the queueing delay of a distiller round trip under load — and")
	fmt.Println("fig5 shows the GIF distribution's icon plateau sits wholly below it.")
}
