// Command experiments regenerates every table and figure from the
// paper's evaluation (§4) plus the ablations DESIGN.md calls out.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig5|fig6|fig7|fig8|table1|table2|cache|cachecurve|
//	                 mgrcap|oscillation|sansat|faults|hotbot|econ
//	experiments -list
//
// Each experiment prints the same rows/series the paper reports, so
// output can be compared side by side with the published artifact
// (EXPERIMENTS.md records that comparison).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

type experiment struct {
	id   string
	what string
	run  func(seed int64)
}

var experiments = []experiment{
	{"fig5", "content-length distributions per MIME type (Figure 5)", runFig5},
	{"fig6", "request-rate burstiness across time scales (Figure 6)", runFig6},
	{"fig7", "distillation latency vs input size (Figure 7)", runFig7},
	{"fig8", "self-tuning and fault recovery time series (Figure 8)", runFig8},
	{"table1", "TranSend vs HotBot structural differences (Table 1)", runTable1},
	{"table2", "linear scalability sweep (Table 2)", runTable2},
	{"cache", "cache partition performance (§4.4)", runCache},
	{"cachecurve", "hit rate vs cache size vs population (§4.4)", runCacheCurve},
	{"mgrcap", "manager load-announcement capacity (§4.6)", runMgrCap},
	{"oscillation", "stale-data oscillation ablation (§4.5)", runOscillation},
	{"sansat", "SAN saturation ablation (§4.6)", runSANSat},
	{"faults", "process-peer fault tolerance timeline (§3.1.3)", runFaults},
	{"fig9", "chaos harness: fault storm + recovery timeline (§4.3)", runFig9},
	{"hotbot", "partitioned search: fan-out and node loss (§3.2)", runHotBot},
	{"econ", "economic feasibility model (§5.2)", runEcon},
	{"threshold", "the 1 KB distillation threshold rationale (§4.1)", runThreshold},
}

func main() {
	runFlag := flag.String("run", "", "experiment id or 'all'")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list experiments")
	snapshot := flag.String("snapshot", "", "write figure-benchmark metrics to this JSON file ('auto' = BENCH_<date>.json)")
	benchdiff := flag.Bool("benchdiff", false, "compare two snapshots: -benchdiff BASELINE.json FRESH.json (exit 1 on gated regression)")
	flag.Parse()

	if *benchdiff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: experiments -benchdiff BASELINE.json FRESH.json")
			os.Exit(2)
		}
		failures, err := runBenchDiff(flag.Arg(0), flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if failures > 0 {
			os.Exit(1)
		}
		return
	}

	if *snapshot != "" {
		path := *snapshot
		if path == "auto" {
			path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
		}
		if err := writeSnapshot(path, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "snapshot:", err)
			os.Exit(1)
		}
		return
	}

	if *list || *runFlag == "" {
		fmt.Println("experiments:")
		for _, e := range experiments {
			fmt.Printf("  %-12s %s\n", e.id, e.what)
		}
		if *runFlag == "" {
			os.Exit(0)
		}
	}

	ids := map[string]experiment{}
	for _, e := range experiments {
		ids[e.id] = e
	}
	var selected []experiment
	if *runFlag == "all" {
		selected = experiments
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			e, ok := ids[id]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		banner(e.id + " — " + e.what)
		e.run(*seed)
		fmt.Println()
	}
}

func banner(s string) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(s)
	fmt.Println(strings.Repeat("=", 72))
}

// sparkline renders values as a compact ASCII series.
func sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	if len(values) > width {
		// Downsample by max within buckets (peaks matter).
		out := make([]float64, width)
		per := float64(len(values)) / float64(width)
		for i := 0; i < width; i++ {
			lo, hi := int(float64(i)*per), int(float64(i+1)*per)
			if hi > len(values) {
				hi = len(values)
			}
			max := 0.0
			for _, v := range values[lo:hi] {
				if v > max {
					max = v
				}
			}
			out[i] = max
		}
		values = out
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	levels := []rune(" .:-=+*#%@")
	var b strings.Builder
	for _, v := range values {
		i := int(v / max * float64(len(levels)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(levels) {
			i = len(levels) - 1
		}
		b.WriteRune(levels[i])
	}
	return b.String()
}

func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
