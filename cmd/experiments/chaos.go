package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/chaos"
)

// runFig9 is the fault-recovery experiment the paper describes in
// prose (§4.3) but never plots: a complete SNS instance under
// background load takes a scripted fault storm — worker crash,
// manager crash, front-end crash, cache partition, loss burst — and
// the harness prints the unified timeline (faults, process exits,
// monitor alerts) plus the before/after capacity comparison.
func runFig9(seed int64) {
	h, err := chaos.New(chaos.Config{
		Seed:           seed,
		FrontEnds:      2,
		DedicatedNodes: 12,
		BeaconInterval: 50 * time.Millisecond,
		ReportInterval: 50 * time.Millisecond,
	})
	if err != nil {
		fmt.Println("chaos start:", err)
		return
	}
	defer h.Stop()
	ctx := context.Background()

	baseline := h.BaselineCapacity(ctx, 40)
	fmt.Printf("pre-fault steady-state capacity: %.0f%% of probes served\n\n", 100*baseline)

	sched := chaos.Schedule{Seed: seed, Events: []chaos.Event{
		{At: 500 * time.Millisecond, Kind: chaos.KillWorker, Slot: 0},
		{At: 1500 * time.Millisecond, Kind: chaos.KillManager},
		{At: 2500 * time.Millisecond, Kind: chaos.KillFrontEnd, Slot: 0},
		{At: 3500 * time.Millisecond, Kind: chaos.PartitionCaches, Dur: 700 * time.Millisecond},
		{At: 4500 * time.Millisecond, Kind: chaos.LossBurst, Dur: 500 * time.Millisecond, P2P: 0.3, Mcast: 0.6},
		{At: 5500 * time.Millisecond, Kind: chaos.HangWorker, Slot: 1, Dur: 600 * time.Millisecond},
	}}
	h.StartLoad(40, 300, 7*time.Second)
	injected := h.Execute(ctx, sched)
	load := h.StopLoad()

	steady := h.AwaitSteady(20 * time.Second)
	after, within := h.RecoveredWithin(ctx, 40, 0.10)

	fmt.Printf("injected %d faults under %d requests of background load "+
		"(%.1f%% served, %d degraded, %d failed)\n\n",
		injected, load.Issued, 100*load.SuccessRate(), load.Degraded, load.Failed)
	fmt.Println("timeline (faults, process exits, monitor alerts):")
	fmt.Print(h.Timeline())
	fmt.Printf("\nreturned to steady state: %v\n", steady)
	fmt.Printf("post-fault capacity: %.0f%% (baseline %.0f%%, within 10%%: %v)\n",
		100*after, 100*baseline, within)
	fmt.Println("\npaper §4.3: workers, front ends and the manager can be killed at")
	fmt.Println("random; soft state rebuilt from beacons restores full capacity in")
	fmt.Println("seconds with no recovery protocol anywhere")
}
