package main

// Bench snapshot: one JSON file per run capturing the paper-comparable
// metrics the figure benchmarks report (bench_test.go's ReportMetric
// values), so the perf trajectory across PRs is a diffable artifact
// instead of scrollback. `make bench-snapshot` writes BENCH_<date>.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/distiller"
	"repro/internal/edge"
	"repro/internal/media"
	"repro/internal/obs"
	"repro/internal/san"
	"repro/internal/snsim"
	"repro/internal/stub"
	"repro/internal/tacc"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vcache"
)

// BenchSnapshot is the serialized form.
type BenchSnapshot struct {
	Date    string             `json:"date"`
	Seed    int64              `json:"seed"`
	Go      string             `json:"go"`
	NumCPU  int                `json:"num_cpu"`
	Metrics map[string]float64 `json:"metrics"`
}

// writeSnapshot measures every figure metric once and writes the JSON
// file. Wall-clock-sensitive metrics (distiller ms/KB, recovery
// latency) vary with the host; the structural metrics (hit rates,
// capacities, spawn counts) are seed-deterministic.
func writeSnapshot(path string, seed int64) error {
	m := map[string]float64{}

	// fig5: mean GIF size from the content model (paper: 3428 B).
	rng := rand.New(rand.NewSource(seed))
	gif := trace.GIFSizes()
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(gif.Sample(rng))
	}
	m["fig5_gif_mean_bytes"] = sum / n

	// fig6: arrivals per virtual hour at the default rate.
	arr := trace.DefaultArrivals(seed)
	m["fig6_arrivals_per_hour"] = float64(len(arr.Generate(rand.New(rand.NewSource(seed)), 12*time.Hour, 13*time.Hour)))

	// fig7: distiller cost per KB on a 10 KB SGIF (hardware-bound).
	data := media.GenerateContent(rand.New(rand.NewSource(seed)), media.MIMESGIF, 10*1024)
	w := distiller.SGIFDistiller{}
	task := &tacc.Task{Input: tacc.Blob{MIME: media.MIMESGIF, Data: data}}
	start := time.Now()
	const distills = 50
	for i := 0; i < distills; i++ {
		if _, err := w.Process(context.Background(), task); err != nil {
			return err
		}
	}
	m["fig7_distill_ms_per_kb"] = float64(time.Since(start).Microseconds()) / 1000 / distills / (float64(len(data)) / 1024)

	// fig8: spawns over the self-tuning scenario.
	m["fig8_spawns_per_run"] = float64(len(snsim.RunFigure8(seed).Spawns))

	// table2: derived per-distiller capacity (paper: ~23 req/s).
	m["table2_req_s_per_distiller"] = snsim.RunTable2(seed).PerDistillerReqS

	// cache: hit rate at the 1 GB / 800-user point.
	m["cache_hit_rate"] = snsim.RunCacheCurve(snsim.CacheCurveParams{
		Seed: seed, Users: 800, ReqPerUser: 100, Universe: 200000, CacheBytes: 1 << 30,
	}).HitRate

	// oscillation: spread ratio raw/fixed (the §4.5 ablation).
	raw := snsim.RunOscillation(seed, false)
	fixed := snsim.RunOscillation(seed, true)
	if fixed.Spread > 0 {
		m["oscillation_spread_ratio"] = raw.Spread / fixed.Spread
	}

	// sansat: beacon loss on the 10 Mb/s shared SAN.
	m["sansat_beacon_loss"] = snsim.RunSANSaturation(seed, 10, false).BeaconLossRate

	// fault recovery: one live worker-crash -> respawn cycle through
	// the chaos harness, in milliseconds.
	if ms, err := measureRecovery(seed); err == nil {
		m["fault_recovery_ms"] = ms
	} else {
		fmt.Fprintln(os.Stderr, "snapshot: recovery measurement failed:", err)
	}

	// supervisor restart: kill-to-serving latency of one cross-process
	// supervised front-end restart over a loopback bridge (ns tracked,
	// not gated — dominated by heartbeat TTLs and real sockets).
	if ns, err := measureSupervisorRestart(seed); err == nil {
		m["supervisor_restart_ns"] = ns
	} else {
		fmt.Fprintln(os.Stderr, "snapshot: supervisor restart measurement failed:", err)
	}

	// manager failover: crash-to-new-regime latency of the lease
	// election — primary killed, clock stopped when a standby is the
	// acting primary at a higher epoch with the full worker inventory
	// re-anchored (ns tracked, not gated — beacon-silence timeouts
	// dominate).
	if ns, err := measureManagerFailover(seed); err == nil {
		m["manager_failover_ns"] = ns
	} else {
		fmt.Fprintln(os.Stderr, "snapshot: manager failover measurement failed:", err)
	}

	// Request latency profile under steady load: the chaos load
	// generator's p50/p99/p999, the client-side view of the whole
	// FE→cache→worker path (ns tracked, not gated — wall-clock).
	if err := measureLatencyProfile(seed, m); err != nil {
		fmt.Fprintln(os.Stderr, "snapshot: latency profile failed:", err)
	}

	// Hot-path micro costs: SAN send (passthrough vs wire), partition
	// get, wire encode/decode — ns/op is hardware-bound (tracked, not
	// gated); allocs/op is deterministic and regression-gated.
	measureHotPaths(m)

	// Zero-copy data plane: the FE→cache→FE blob relay at the three
	// characteristic sizes (ns tracked; allocs and B/op gated — they
	// are what "at most one body copy per hop" means in numbers).
	measureBlobRelay(m)

	// Edge front door: what one hop through the L7 proxy adds on top of
	// hitting the FE adapter directly (ns tracked, not gated — loopback
	// socket costs are host-bound).
	measureEdgeProxy(m)

	snap := BenchSnapshot{
		Date:    time.Now().UTC().Format("2006-01-02"),
		Seed:    seed,
		Go:      runtime.Version(),
		NumCPU:  runtime.NumCPU(),
		Metrics: m,
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n%s\n", path, out)
	return nil
}

// record stores one benchmark's ns/op and allocs/op under
// <name>_ns / <name>_allocs. Allocs are kept fractional so amortized
// pool misses stay visible.
func record(m map[string]float64, name string, r testing.BenchmarkResult) {
	m[name+"_ns"] = float64(r.NsPerOp())
	if r.N > 0 {
		m[name+"_allocs"] = float64(r.MemAllocs) / float64(r.N)
	}
}

// recordMem is record plus allocated bytes per op (<name>_bytes) — for
// the data-plane metrics where B/op is the copy count made measurable.
func recordMem(m map[string]float64, name string, r testing.BenchmarkResult) {
	record(m, name, r)
	if r.N > 0 {
		m[name+"_bytes"] = float64(r.MemBytes) / float64(r.N)
	}
}

// measureHotPaths benchmarks the request hot path's building blocks
// (via testing.Benchmark, so the snapshot needs no `go test` run):
// the SAN send pair with and without the wire codec, the encode-once
// codec primitives, and the sharded cache partition get.
func measureHotPaths(m map[string]float64) {
	// Wire codec primitives over a load report (the highest-rate
	// control-plane message).
	kind := stub.MsgLoadReport
	var body any = stub.LoadReport{
		ID: "w0", Class: "echo", QLen: 10, CostMs: 3.75,
		Done: 100, Errors: 2, Crashes: 1,
		Info: stub.WorkerInfo{
			ID: "w0", Class: "echo",
			Addr: san.Addr{Node: "n1", Proc: "w0"}, Node: "n1", QLen: 2.5,
		},
	}
	buf, err := stub.EncodeBodyAppend(nil, kind, body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapshot: encode failed:", err)
		return
	}
	record(m, "wire_encode_append", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if buf, err = stub.EncodeBodyAppend(buf[:0], kind, body); err != nil {
				b.Fatal(err)
			}
		}
	}))
	record(m, "wire_decode", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stub.DecodeBody(kind, buf); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Transport frame primitives over the same load report: encode
	// must stay at 0 allocs/op (pooled buffers + alloc-free append),
	// and the zero-copy streaming decoder likewise.
	from := san.Addr{Node: "a-node0", Proc: "fe0"}
	to := san.Addr{Node: "b-node1", Proc: "w0"}
	frame := transport.AppendData(nil, from, to, kind, 1, false, buf)
	record(m, "frame_encode", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			frame = transport.AppendData(frame[:0], from, to, kind, 1, false, buf)
		}
	}))
	record(m, "frame_decode", testing.Benchmark(func(b *testing.B) {
		var dec transport.Decoder
		for i := 0; i < b.N; i++ {
			_, _ = dec.Write(frame)
			if _, ok, err := dec.Next(); err != nil || !ok {
				b.Fatalf("decode: ok=%v err=%v", ok, err)
			}
		}
	}))

	// Bridged send pair over loopback TCP: batching writer on vs one
	// write per frame (ns tracked for the trajectory, not gated —
	// socket costs are host-bound).
	bridgeBench := func(batched bool) testing.BenchmarkResult {
		netA := san.NewNetwork(1, san.WithCodec(stub.WireCodec{}))
		netB := san.NewNetwork(2, san.WithCodec(stub.WireCodec{}))
		defer netA.Close()
		defer netB.Close()
		delay := time.Duration(0)
		if !batched {
			delay = -1
		}
		ba, err := transport.New(transport.Config{Net: netA, Listen: "tcp:127.0.0.1:0", ID: "snap-a", FlushDelay: delay})
		if err != nil {
			fmt.Fprintln(os.Stderr, "snapshot: bridge:", err)
			return testing.BenchmarkResult{}
		}
		defer ba.Close()
		bb, err := transport.New(transport.Config{Net: netB, Listen: "tcp:127.0.0.1:0", ID: "snap-b", FlushDelay: delay, Join: []string{ba.Advertise()}})
		if err != nil {
			fmt.Fprintln(os.Stderr, "snapshot: bridge:", err)
			return testing.BenchmarkResult{}
		}
		defer bb.Close()
		if !ba.WaitPeers(1, 5*time.Second) {
			fmt.Fprintln(os.Stderr, "snapshot: bridges never connected")
			return testing.BenchmarkResult{}
		}
		src := netA.Endpoint(san.Addr{Node: "a-n0", Proc: "src"}, 8)
		dst := netB.Endpoint(san.Addr{Node: "b-n0", Proc: "dst"}, 1<<16)
		go func() {
			for range dst.Inbox() {
			}
		}()
		// Teach A a route for dst (routes are learned from received
		// frames, so dst must send once), then measure routed sends.
		_ = dst.Send(src.Addr(), kind, body, 64)
		for range src.Inbox() {
			break
		}
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := src.Send(dst.Addr(), kind, body, 64); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	record(m, "bridge_send_batched", bridgeBench(true))
	record(m, "bridge_send_unbatched", bridgeBench(false))

	// SAN send pair: identical traffic, codec off vs on.
	sendBench := func(opts ...san.Option) testing.BenchmarkResult {
		n := san.NewNetwork(1, opts...)
		src := n.Endpoint(san.Addr{Node: "s", Proc: "src"}, 8)
		dst := n.Endpoint(san.Addr{Node: "d", Proc: "dst"}, 1<<16)
		go func() {
			for range dst.Inbox() {
			}
		}()
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := src.Send(dst.Addr(), "d", nil, 1024); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	record(m, "san_send_passthrough", sendBench())
	record(m, "san_send_wire", sendBench(san.WithCodec(stub.WireCodec{})))

	// Trace machinery: ns per span recorded into the ring on a sampled
	// trace — the per-hop price a request pays when sampling fires.
	// (An unsampled Record is a single branch; the gated send metrics
	// above run with tracing disabled and must not move.) Tracked for
	// the trajectory, never gated — never add this to benchdiff's gate
	// list.
	tr := obs.NewTracer(1, 0)
	tr.SetSampleRate(1)
	sp := obs.Span{Trace: tr.NewTrace(), Proc: "snap", Comp: "fe0", Hop: obs.RootHop, Start: time.Now().UnixNano(), Dur: 1000}
	m["trace_overhead_ns"] = float64(testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.Record(sp)
		}
	}).NsPerOp())

	// Sharded partition get on warm keys.
	p := vcache.NewPartition(64<<20, nil)
	data := make([]byte, 8192)
	keys := make([]string, 1000)
	for i := range keys {
		keys[i] = fmt.Sprintf("warm%d", i)
		p.Put(keys[i], data, "b", 0)
	}
	record(m, "partition_get", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := p.Get(keys[i%len(keys)]); !ok {
				b.Fatal("miss on warm key")
			}
		}
	}))
}

// measureBlobRelay benchmarks one cached-object fetch end to end over
// a real two-bridge SAN (client → wire → cache partition → wire →
// client) at 4 KB, 64 KB, and 512 KB. The small sizes ride a single
// vectored frame; 512 KB crosses as chunk fragments. GetView keeps the
// client zero-copy, so <size>_allocs / <size>_bytes are the data
// plane's whole per-request footprint.
func measureBlobRelay(m map[string]float64) {
	netA := san.NewNetwork(1, san.WithCodec(stub.WireCodec{}))
	netB := san.NewNetwork(2, san.WithCodec(stub.WireCodec{}))
	defer netA.Close()
	defer netB.Close()
	ba, err := transport.New(transport.Config{Net: netA, Listen: "tcp:127.0.0.1:0", ID: "relay-a"})
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapshot: blob relay bridge:", err)
		return
	}
	defer ba.Close()
	bb, err := transport.New(transport.Config{Net: netB, Listen: "tcp:127.0.0.1:0", ID: "relay-b", Join: []string{ba.Advertise()}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapshot: blob relay bridge:", err)
		return
	}
	defer bb.Close()
	if !ba.WaitPeers(1, 5*time.Second) {
		fmt.Fprintln(os.Stderr, "snapshot: blob relay bridges never connected")
		return
	}

	svc := vcache.NewService("cache0", netB, "b-cnode", vcache.NewPartition(256<<20, nil))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = svc.Run(ctx) }()

	ep := netA.Endpoint(san.Addr{Node: "a-fe", Proc: "client"}, 256)
	go func() {
		for msg := range ep.Inbox() {
			ep.DeliverReply(msg)
		}
	}()
	client := vcache.NewClient(ep)
	client.AddNode("cache0", svc.Addr())

	for _, tc := range []struct {
		name string
		size int
	}{
		{"blob_relay_4k", 4 << 10},
		{"blob_relay_64k", 64 << 10},
		{"blob_relay_512k", 512 << 10},
	} {
		payload := make([]byte, tc.size)
		for i := range payload {
			payload[i] = byte(i)
		}
		client.Put(ctx, tc.name, payload, "image/gif", 0)
		recordMem(m, tc.name, testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				data, _, release, ok := client.GetView(ctx, tc.name)
				if !ok || len(data) != tc.size {
					b.Fatalf("relay get: ok=%v len=%d want %d", ok, len(data), tc.size)
				}
				if release != nil {
					release()
				}
			}
		}))
	}
	if we := netA.Stats().WireErrors + netB.Stats().WireErrors; we != 0 {
		fmt.Fprintf(os.Stderr, "snapshot: blob relay saw %d wire errors\n", we)
	}
}

// measureEdgeProxy benchmarks one GET through the edge (pool pick,
// header stamping, backend round trip, relay) against the same GET
// straight at the backend, and records the difference as the proxy's
// per-request overhead.
func measureEdgeProxy(m map[string]float64) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	defer backend.Close()

	n := san.NewNetwork(1)
	defer n.Close()
	eg, err := edge.New(edge.Config{
		Name: "edge", Node: "snapnode", Net: n, Listen: "127.0.0.1:0",
		// One synthetic Observe stands in for heartbeats; an unbounded
		// TTL keeps the backend resident however long the bench runs.
		Pool: edge.PoolConfig{TTL: time.Hour},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapshot: edge:", err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = eg.Run(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for !eg.Running() {
		if time.Now().After(deadline) {
			fmt.Fprintln(os.Stderr, "snapshot: edge never started")
			return
		}
		time.Sleep(time.Millisecond)
	}
	eg.ObserveBackend("snapnode/fe0", "fe0", backend.Listener.Addr().String(), false)

	client := &http.Client{}
	get := func(b *testing.B, url string) {
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	direct := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			get(b, backend.URL)
		}
	})
	through := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			get(b, "http://"+eg.HTTPAddr()+"/fetch?url=x")
		}
	})
	m["edge_proxy_ns"] = float64(through.NsPerOp())
	overhead := through.NsPerOp() - direct.NsPerOp()
	if overhead < 0 {
		overhead = 0
	}
	m["edge_proxy_overhead_ns"] = float64(overhead)
}

// measureLatencyProfile runs the chaos load generator against a
// healthy default system for two seconds at a comfortable rate and
// records the client-observed latency percentiles. These place the
// overload scenarios' histograms on the same axis as the figure
// metrics: the trajectory shows when a data-plane change moves the
// tail, without gating on host speed.
func measureLatencyProfile(seed int64, m map[string]float64) error {
	h, err := chaos.New(chaos.Config{Seed: seed})
	if err != nil {
		return err
	}
	defer h.Stop()
	const dur = 2 * time.Second
	h.StartLoad(100, 4096, dur)
	time.Sleep(dur + 300*time.Millisecond) // drain so the percentiles cover every issued request
	st := h.StopLoad()
	if st.Issued == 0 {
		return fmt.Errorf("load generator issued nothing")
	}
	m["latency_p50_ns"] = float64(st.P50.Nanoseconds())
	m["latency_p99_ns"] = float64(st.P99.Nanoseconds())
	m["latency_p999_ns"] = float64(st.P999.Nanoseconds())
	return nil
}

// measureRecovery boots a compact system, kills a worker, and times
// the manager's timeout-inference + respawn loop.
func measureRecovery(seed int64) (float64, error) {
	h, err := chaos.New(chaos.Config{Seed: seed})
	if err != nil {
		return 0, err
	}
	defer h.Stop()
	spawns := h.Sys.Manager().Stats().Spawns
	start := time.Now()
	h.Execute(context.Background(), chaos.Schedule{Seed: seed, Events: []chaos.Event{{Kind: chaos.KillWorker, Slot: 0}}})
	deadline := time.Now().Add(10 * time.Second)
	for h.Sys.Manager().Stats().Spawns == spawns {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("no respawn within 10s")
		}
		time.Sleep(time.Millisecond)
	}
	return float64(time.Since(start).Microseconds()) / 1000, nil
}

// measureManagerFailover boots a two-replica system through the chaos
// harness, crashes the acting primary, and times the lease election:
// crash to "a standby is the acting primary at a higher epoch and the
// whole worker inventory has re-anchored on it first-hand".
func measureManagerFailover(seed int64) (float64, error) {
	h, err := chaos.New(chaos.Config{Seed: seed, Managers: 2})
	if err != nil {
		return 0, err
	}
	defer h.Stop()
	old := h.Sys.PrimaryManager()
	oldEpoch := old.Epoch()
	// The harness awaited steady state, so the dying primary's worker
	// table is the full configured inventory.
	want := old.Stats().Workers
	start := time.Now()
	h.Execute(context.Background(), chaos.Schedule{Seed: seed, Events: []chaos.Event{{Kind: chaos.KillManager}}})
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := h.Sys.PrimaryManager()
		if m != nil && m != old && m.IsPrimary() && m.Epoch() > oldEpoch && m.Stats().Workers >= want {
			return float64(time.Since(start).Nanoseconds()), nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("no standby takeover within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

// measureSupervisorRestart times one cross-process supervised restart:
// two bridged systems over loopback TCP (manager + workers + caches in
// B, front end in A), A's front end killed, the clock stopped when the
// manager in B has delegated the restart to A's supervisor and the
// replacement is serving. Wall-clock (heartbeat TTL dominated), so the
// metric is tracked in the trajectory, never gated.
func measureSupervisorRestart(seed int64) (float64, error) {
	reg := tacc.NewRegistry()
	reg.Register("snap-echo", func() tacc.Worker {
		return tacc.WorkerFunc{Name: "snap-echo", Fn: func(ctx context.Context, task *tacc.Task) (tacc.Blob, error) {
			return task.Input, nil
		}}
	})
	rules := func(url, mime string, profile map[string]string) tacc.Pipeline {
		return tacc.Pipeline{{Class: "snap-echo"}}
	}
	workers := map[string]int{"snap-echo": 1}
	const tick = 10 * time.Millisecond

	dirB, err := os.MkdirTemp("", "snap-sup-b-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dirB)
	sysB, err := core.Start(core.Config{
		Seed:           seed,
		Roles:          core.Roles{Manager: true, Workers: true, Caches: true},
		NodePrefix:     "b-",
		Transport:      core.TransportConfig{Listen: "tcp:127.0.0.1:0"},
		DedicatedNodes: 4,
		Workers:        workers,
		Registry:       reg,
		Rules:          rules,
		ProfileDir:     dirB,
		BeaconInterval: tick,
		ReportInterval: tick,
		CallTimeout:    time.Second,
	})
	if err != nil {
		return 0, err
	}
	defer sysB.Stop()

	dirA, err := os.MkdirTemp("", "snap-sup-a-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dirA)
	sysA, err := core.Start(core.Config{
		Seed:           seed + 1,
		Roles:          core.Roles{FrontEnds: true, Monitor: true},
		NodePrefix:     "a-",
		Transport:      core.TransportConfig{Listen: "tcp:127.0.0.1:0", Join: []string{sysB.Bridge.Advertise()}},
		DedicatedNodes: 4,
		FrontEnds:      1,
		RemoteCaches:   core.CacheAddrs("b-", 0, 4),
		Workers:        workers,
		Registry:       reg,
		Rules:          rules,
		ProfileDir:     dirA,
		BeaconInterval: tick,
		ReportInterval: tick,
		CallTimeout:    time.Second,
	})
	if err != nil {
		return 0, err
	}
	defer sysA.Stop()

	if !sysB.WaitReady(15*time.Second) || !sysA.WaitReady(15*time.Second) {
		return 0, fmt.Errorf("bridged pair not ready")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := sysB.Manager().SupervisorFor("a-node0"); ok {
			break
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("supervisor hello never crossed")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	if err := sysA.KillFrontEnd("fe0"); err != nil {
		return 0, err
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		st := sysB.Manager().Stats()
		fes := sysA.FrontEnds()
		if st.Delegated >= 1 && len(fes) > 0 && fes[0].Running() {
			return float64(time.Since(start).Nanoseconds()), nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("no delegated restart within 15s")
		}
		time.Sleep(time.Millisecond)
	}
}
