// Command hotbot runs the partitioned search engine as an HTTP
// service, in the spirit of the commercial deployment the paper
// describes (§3.2).
//
//	go run ./cmd/hotbot -listen :8090 -docs 54000 -partitions 26
//
// Endpoints:
//
//	GET /search?q=<terms>&k=<n>       collated results (HTML)
//	GET /search?q=...&page=2          incremental delivery from cache
//	GET /chaos?kill=<node>            kill a shard node
//	GET /status                       shard and cache statistics
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/san"
	"repro/internal/search"
)

func main() {
	listen := flag.String("listen", ":8090", "HTTP listen address")
	docsN := flag.Int("docs", 54000, "corpus size (54M at 1:1000 scale)")
	partitions := flag.Int("partitions", 26, "index partitions")
	crossMount := flag.Bool("crossmount", false, "original-Inktomi replica mode")
	flag.Parse()

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	log.Printf("hotbot: indexing %d documents across %d partitions...", *docsN, *partitions)
	docs := search.GenerateCorpus(rng, *docsN, 8000)

	net := san.NewNetwork(1)
	cl := cluster.New(net)
	for i := 0; i < *partitions; i++ {
		cl.AddNode(fmt.Sprintf("node%d", i), false)
	}
	mode := search.FastRestart
	if *crossMount {
		mode = search.CrossMount
	}
	engine, err := search.Deploy(search.Config{
		Net:        net,
		Cluster:    cl,
		Partitions: *partitions,
		Mode:       mode,
		Seed:       1,
	}, docs)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.StopAll()
	log.Printf("hotbot: up in %s mode", mode)

	mux := http.NewServeMux()
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, "missing q parameter", http.StatusBadRequest)
			return
		}
		k, _ := strconv.Atoi(r.URL.Query().Get("k"))
		if k <= 0 {
			k = 10
		}
		if pageStr := r.URL.Query().Get("page"); pageStr != "" {
			page, _ := strconv.Atoi(pageStr)
			hits, ok := engine.Page(q, page, k)
			if !ok {
				http.Error(w, "query not cached; fetch page 1 first", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "text/html")
			fmt.Fprint(w, search.RenderResults(search.QueryResult{Query: q, Hits: hits}))
			return
		}
		res := engine.Query(r.Context(), q, k)
		w.Header().Set("Content-Type", "text/html")
		w.Header().Set("X-HotBot-Docs-Searched", strconv.Itoa(res.DocsSearched))
		w.Header().Set("X-HotBot-Partial", strconv.FormatBool(res.Partial))
		fmt.Fprint(w, search.RenderResults(res))
	})
	mux.HandleFunc("/chaos", func(w http.ResponseWriter, r *http.Request) {
		node := r.URL.Query().Get("kill")
		if node == "" {
			http.Error(w, "kill=<node>", http.StatusBadRequest)
			return
		}
		if err := cl.KillNode(node); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "%s killed\n", node)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		st := engine.Stats()
		fmt.Fprintf(w, "mode: %s\ncorpus: %d docs\nqueries: %d (cache hits %d)\n",
			mode, engine.TotalDocs(), st.Queries, st.CacheHits)
		fmt.Fprintf(w, "partial answers: %d, shard timeouts: %d, replica fallbacks: %d\n",
			st.PartialAnswers, st.ShardTimeouts, st.ReplicaFallbacks)
		for _, n := range cl.Nodes() {
			fmt.Fprintf(w, "  %-8s alive=%-5v procs=%v\n", n.ID, n.Alive, n.Procs)
		}
	})

	// A configured server, not bare ListenAndServe: header timeouts so
	// a slow-header client can't pin goroutines, and a graceful
	// Shutdown on SIGINT/SIGTERM.
	srv := &http.Server{
		Addr:              *listen,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	log.Printf("hotbot: listening on %s — try /search?q=ba+de", *listen)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-sig:
		log.Print("hotbot: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
}
