// Command transend runs the TranSend distillation proxy as a real
// HTTP service on localhost: the paper's deployment scenario with the
// dialup modem bank replaced by your browser or curl.
//
//	go run ./cmd/transend -listen :8089
//
// Endpoints:
//
//	GET /fetch?url=<synthetic-url>&user=<id>   proxy + distill a page
//	GET /fetch?url=...&raw=1                   bypass distillation
//	GET /prefs?user=<id>&key=<k>&val=<v>       set a profile entry
//	GET /prefs?user=<id>                       show a profile
//	GET /status                                monitor's system view
//	GET /chaos?kill=worker|manager|frontend    fault injection
//
// Synthetic URLs look like http://origin7.example/obj123.sjpg — any
// obj<N>.<sgif|sjpg|html> works; content is generated deterministically
// by the simulated origin universe.
//
// Multi-process mode: -san-listen attaches the SAN to a socket bridge
// and -join splices this process into a cluster spanning other OS
// processes (cmd/node or other transend instances). -roles restricts
// which components run here; see cmd/node for the two-terminal
// walkthrough:
//
//	go run ./cmd/node -listen tcp:127.0.0.1:7401 -prefix b -roles manager,worker,cache
//	go run ./cmd/transend -san-listen tcp:127.0.0.1:7402 -join tcp:127.0.0.1:7401 \
//	    -prefix a -roles frontend,monitor -cache-host b
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/distiller"
	"repro/internal/frontend"
	"repro/internal/manager"
	"repro/internal/tacc"
)

func main() {
	listen := flag.String("listen", ":8089", "HTTP listen address")
	frontEnds := flag.Int("frontends", 2, "front ends")
	cacheParts := flag.Int("caches", 2, "cache partitions")
	nodes := flag.Int("nodes", 8, "dedicated cluster nodes")
	overflow := flag.Int("overflow", 2, "overflow pool nodes")
	spawnH := flag.Float64("H", 10, "spawn threshold (avg queue length)")
	dampD := flag.Duration("D", 5*time.Second, "spawn damping window")
	profileDir := flag.String("profiles", "", "profile DB directory (empty = temp)")
	wire := flag.Bool("wire", true, "serialize SAN messages through the wire codec (production path)")
	sanListen := flag.String("san-listen", "", "transport bridge listen address (tcp:host:port or unix:/path); enables multi-process mode")
	join := flag.String("join", "", "comma-separated seed bridge addresses of a running cluster to join")
	rolesFlag := flag.String("roles", "all", "roles this process hosts: frontend,manager,worker,cache,monitor (or 'all')")
	prefix := flag.String("prefix", "", "node-name prefix; must be unique per process in multi-process mode")
	cacheHost := flag.String("cache-host", "", "node prefix of the process hosting the cache partitions (when the cache role is remote)")
	cacheNodes := flag.Int("cache-nodes", 0, "dedicated node count of the cache-hosting process (default: -nodes)")
	flag.Parse()

	roles, err := core.ParseRoles(*rolesFlag)
	if err != nil {
		log.Fatal(err)
	}
	if *join != "" && *sanListen == "" {
		*sanListen = "tcp:127.0.0.1:0" // joining requires a bridge of our own
	}
	if *sanListen != "" && *prefix == "" {
		log.Fatal("transend: -prefix is required in multi-process mode (node names must be unique per process)")
	}
	var joins []string
	for _, a := range strings.Split(*join, ",") {
		if a = strings.TrimSpace(a); a != "" {
			joins = append(joins, a)
		}
	}

	registry := tacc.NewRegistry()
	distiller.RegisterAll(registry)
	cfg := core.Config{
		Seed:           time.Now().UnixNano(),
		WireMode:       *wire,
		Roles:          roles,
		NodePrefix:     *prefix,
		DedicatedNodes: *nodes,
		OverflowNodes:  *overflow,
		FrontEnds:      *frontEnds,
		CacheParts:     *cacheParts,
		Workers: map[string]int{
			distiller.ClassSGIF: 1,
			distiller.ClassSJPG: 1,
			distiller.ClassHTML: 1,
		},
		Registry:   registry,
		Rules:      distiller.TranSendRules(),
		ProfileDir: *profileDir,
		Policy: manager.Policy{
			SpawnThreshold: *spawnH,
			Damping:        *dampD,
			ReapThreshold:  0.5,
		},
	}
	if *sanListen != "" {
		cfg.Transport = core.TransportConfig{Listen: *sanListen, Join: joins}
	}
	if *cacheHost != "" {
		cn := *cacheNodes
		if cn <= 0 {
			cn = *nodes
		}
		cfg.RemoteCaches = core.CacheAddrs(*cacheHost, *cacheParts, cn)
	}
	sys, err := core.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	if !sys.WaitReady(15 * time.Second) {
		log.Fatal("transend: system did not come up")
	}
	log.Printf("transend: cluster up — %d nodes, %d front ends, %d cache partitions",
		*nodes, *frontEnds, *cacheParts)
	if sys.Bridge != nil {
		log.Printf("transend: bridge %s on %s, peers %v",
			sys.Bridge.ID(), sys.Bridge.Advertise(), sys.Bridge.Peers())
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/fetch", func(w http.ResponseWriter, r *http.Request) {
		url := r.URL.Query().Get("url")
		if url == "" {
			http.Error(w, "missing url parameter", http.StatusBadRequest)
			return
		}
		user := r.URL.Query().Get("user")
		raw := r.URL.Query().Get("raw") != ""
		ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
		defer cancel()
		var resp frontend.Response
		var err error
		fes := sys.FrontEnds()
		for i := range fes {
			if !fes[i].Running() {
				continue
			}
			resp, err = fes[i].Do(ctx, frontend.Request{URL: url, User: user, Raw: raw})
			if err == nil {
				break
			}
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", httpMIME(resp.Blob.MIME))
		w.Header().Set("X-TranSend-Source", resp.Source)
		if orig := resp.Blob.Meta["origSize"]; orig != "" {
			w.Header().Set("X-TranSend-Original-Size", orig)
		}
		w.Write(resp.Blob.Data)
	})
	mux.HandleFunc("/prefs", func(w http.ResponseWriter, r *http.Request) {
		user := r.URL.Query().Get("user")
		if user == "" {
			http.Error(w, "missing user parameter", http.StatusBadRequest)
			return
		}
		key, val := r.URL.Query().Get("key"), r.URL.Query().Get("val")
		if key != "" {
			if err := sys.SetProfile(user, key, val); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		fmt.Fprintf(w, "profile %s: %v\n", user, sys.Profile.Get(user))
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if sys.Mon != nil {
			fmt.Fprintln(w, sys.Mon.RenderTable())
		}
		for _, fe := range sys.FrontEnds() {
			st := fe.Stats()
			fmt.Fprintf(w, "%s: %+v\n", fe.ID(), st)
		}
		ns := sys.Net.Stats()
		fmt.Fprintf(w, "san: wire=%v %+v\n", sys.Net.WireMode(), ns)
		if sys.Bridge != nil {
			fmt.Fprintf(w, "bridge %s (%s) peers=%v: %+v\n",
				sys.Bridge.ID(), sys.Bridge.Advertise(), sys.Bridge.Peers(), sys.Bridge.Stats())
		}
	})
	mux.HandleFunc("/chaos", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("kill") {
		case "manager":
			sys.KillManager()
			fmt.Fprintln(w, "manager killed; front-end watchdog will restart it")
		case "frontend":
			sys.KillFrontEnd("fe0")
			fmt.Fprintln(w, "fe0 killed; manager will restart it")
		case "worker":
			for _, fe := range sys.FrontEnds() {
				for _, wk := range fe.ManagerStub().Workers(distiller.ClassSJPG) {
					sys.KillWorker(wk.ID)
					fmt.Fprintf(w, "%s killed; manager will replace it\n", wk.ID)
					return
				}
			}
			fmt.Fprintln(w, "no sjpg worker found")
		default:
			http.Error(w, "kill=worker|manager|frontend", http.StatusBadRequest)
		}
	})

	log.Printf("transend: listening on %s — try /fetch?url=http://origin1.example/obj42.sjpg", *listen)
	log.Fatal(http.ListenAndServe(*listen, mux))
}

// httpMIME maps synthetic MIME types onto something browsers accept.
func httpMIME(mime string) string {
	if strings.HasPrefix(mime, "image/") {
		return "application/octet-stream" // synthetic codecs
	}
	if mime == "" {
		return "application/octet-stream"
	}
	return mime
}
