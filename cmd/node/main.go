// Command node runs one SNS cluster member as a real OS process: any
// subset of the roles (front ends, manager, workers, caches, monitor)
// attached to the cluster-wide SAN over the socket transport
// (internal/transport). A cluster is however many node processes you
// start, joined through any one of them.
//
// Two-terminal TranSend cluster on loopback:
//
//	# terminal 1 — control plane: manager, workers, caches
//	go run ./cmd/node -listen tcp:127.0.0.1:7401 -prefix b \
//	    -roles manager,worker,cache
//
//	# terminal 2 — serving plane: front ends + monitor, joins terminal 1
//	go run ./cmd/node -listen tcp:127.0.0.1:7402 -prefix a \
//	    -roles frontend,monitor -join tcp:127.0.0.1:7401 \
//	    -cache-host b -http :8089
//
//	curl 'localhost:8089/fetch?url=http://origin1.example/obj42.sjpg'
//	curl 'localhost:8089/status'
//
// Every message between the two terminals crosses a real TCP
// connection as length-framed, CRC-protected, batched wire bytes.
//
// -selftest N runs N requests against the cluster after it reports
// ready, prints a JSON summary (requests, failures, wire/frame error
// counters, batching figures), and exits non-zero on any failure —
// the mode CI's two-process smoke test uses.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/distiller"
	"repro/internal/manager"
	"repro/internal/tacc"
)

func main() {
	listen := flag.String("listen", "tcp:127.0.0.1:0", "transport bridge listen address (tcp:host:port or unix:/path)")
	join := flag.String("join", "", "comma-separated seed bridge addresses to join")
	id := flag.String("id", "", "bridge id (default: -prefix, then the listen address)")
	prefix := flag.String("prefix", "", "node-name prefix; must be unique per process (required with -join or when joined)")
	rolesFlag := flag.String("roles", "all", "roles to host: frontend,manager,worker,cache,monitor (or 'all')")
	cacheHost := flag.String("cache-host", "", "node prefix of the process hosting the cache partitions (when the cache role is remote)")
	frontEnds := flag.Int("frontends", 2, "front ends (frontend role)")
	cacheParts := flag.Int("caches", 2, "cache partitions (cluster-wide count; used to compute remote addresses too)")
	nodes := flag.Int("nodes", 8, "dedicated cluster nodes in this process")
	cacheNodes := flag.Int("cache-nodes", 0, "dedicated node count of the cache-hosting process (default: -nodes)")
	overflow := flag.Int("overflow", 2, "overflow pool nodes")
	spawnH := flag.Float64("H", 10, "spawn threshold (avg queue length)")
	dampD := flag.Duration("D", 5*time.Second, "spawn damping window")
	profileDir := flag.String("profiles", "", "profile DB directory (empty = temp)")
	httpAddr := flag.String("http", "", "serve the TranSend HTTP API on this address (frontend role)")
	selftest := flag.Int("selftest", 0, "run N requests after ready, print a JSON summary, and exit")
	readyTimeout := flag.Duration("ready-timeout", 30*time.Second, "how long to wait for the cluster to become serviceable")
	seed := flag.Int64("seed", 0, "random seed (0 = time-based)")
	flag.Parse()

	roles, err := core.ParseRoles(*rolesFlag)
	if err != nil {
		log.Fatal(err)
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	if *prefix == "" && *join != "" {
		log.Fatal("node: -prefix is required when joining a cluster (node names must be unique per process)")
	}
	var joins []string
	for _, a := range strings.Split(*join, ",") {
		if a = strings.TrimSpace(a); a != "" {
			joins = append(joins, a)
		}
	}

	registry := tacc.NewRegistry()
	distiller.RegisterAll(registry)
	workers := map[string]int{
		distiller.ClassSGIF: 1,
		distiller.ClassSJPG: 1,
		distiller.ClassHTML: 1,
	}

	cfg := core.Config{
		Seed:       *seed,
		Roles:      roles,
		NodePrefix: *prefix,
		Transport: core.TransportConfig{
			Listen: *listen,
			Join:   joins,
			ID:     *id,
		},
		DedicatedNodes: *nodes,
		OverflowNodes:  *overflow,
		FrontEnds:      *frontEnds,
		CacheParts:     *cacheParts,
		Workers:        workers,
		Registry:       registry,
		Rules:          distiller.TranSendRules(),
		ProfileDir:     *profileDir,
		Policy: manager.Policy{
			SpawnThreshold: *spawnH,
			Damping:        *dampD,
			ReapThreshold:  0.5,
		},
	}
	if *cacheHost != "" {
		cn := *cacheNodes
		if cn <= 0 {
			cn = *nodes
		}
		cfg.RemoteCaches = core.CacheAddrs(*cacheHost, *cacheParts, cn)
	}

	sys, err := core.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	log.Printf("node: bridge %s listening on %s (roles %s, prefix %q)",
		sys.Bridge.ID(), sys.Bridge.Advertise(), *rolesFlag, *prefix)

	if !sys.WaitReady(*readyTimeout) {
		log.Fatalf("node: cluster not serviceable within %s (peers: %v)", *readyTimeout, sys.Bridge.Peers())
	}
	log.Printf("node: ready — peers %v", sys.Bridge.Peers())

	if *selftest > 0 {
		if err := runSelftest(sys, *selftest); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *httpAddr != "" {
		go serveHTTP(sys, *httpAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("node: shutting down")
}

// selftestReport is the JSON the CI smoke test asserts on.
type selftestReport struct {
	Requests       int     `json:"requests"`
	Failures       int     `json:"failures"`
	Distilled      uint64  `json:"distilled"`
	CacheHits      uint64  `json:"cache_hits"`
	Fallbacks      uint64  `json:"fallbacks"`
	WireErrors     uint64  `json:"wire_errors"`
	FrameErrors    uint64  `json:"frame_errors"`
	FramesOut      uint64  `json:"frames_out"`
	FramesIn       uint64  `json:"frames_in"`
	Batches        uint64  `json:"batches"`
	FramesPerBatch float64 `json:"frames_per_batch"`
	Peers          int     `json:"peers"`
}

func runSelftest(sys *core.System, n int) error {
	ctx := context.Background()
	rep := selftestReport{Requests: n}
	for i := 0; i < n; i++ {
		url := fmt.Sprintf("http://origin%d.example/obj%d.sjpg", i%4, i%32)
		rctx, cancel := context.WithTimeout(ctx, 15*time.Second)
		_, err := sys.Request(rctx, url, fmt.Sprintf("user%d", i%8))
		cancel()
		if err != nil {
			rep.Failures++
			log.Printf("selftest: request %d (%s) failed: %v", i, url, err)
		}
	}
	for _, fe := range sys.FrontEnds() {
		st := fe.Stats()
		rep.Distilled += st.Distilled
		rep.CacheHits += st.CacheDistilled + st.CacheOriginal
		rep.Fallbacks += st.Fallbacks
	}
	rep.WireErrors = sys.Net.Stats().WireErrors
	br := sys.Bridge.Stats()
	rep.FrameErrors = br.FrameErrors
	rep.FramesOut, rep.FramesIn = br.FramesOut, br.FramesIn
	rep.Batches = br.Batches
	if br.Batches > 0 {
		rep.FramesPerBatch = float64(br.FramesOut) / float64(br.Batches)
	}
	rep.Peers = br.Peers
	out, _ := json.Marshal(rep)
	fmt.Println(string(out))
	if rep.Failures > 0 || rep.WireErrors > 0 || rep.FrameErrors > 0 {
		return fmt.Errorf("selftest: %d failures, %d wire errors, %d frame errors",
			rep.Failures, rep.WireErrors, rep.FrameErrors)
	}
	return nil
}

// serveHTTP exposes the same /fetch and /status endpoints as
// cmd/transend, backed by this process's front ends.
func serveHTTP(sys *core.System, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/fetch", func(w http.ResponseWriter, r *http.Request) {
		url := r.URL.Query().Get("url")
		if url == "" {
			http.Error(w, "missing url parameter", http.StatusBadRequest)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
		defer cancel()
		resp, err := sys.Request(ctx, url, r.URL.Query().Get("user"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("X-TranSend-Source", resp.Source)
		w.Write(resp.Blob.Data)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if sys.Mon != nil {
			fmt.Fprintln(w, sys.Mon.RenderTable())
		}
		for _, fe := range sys.FrontEnds() {
			fmt.Fprintf(w, "%s: %+v\n", fe.ID(), fe.Stats())
		}
		fmt.Fprintf(w, "san: wire=%v %+v\n", sys.Net.WireMode(), sys.Net.Stats())
		fmt.Fprintf(w, "bridge: %+v\n", sys.Bridge.Stats())
	})
	log.Printf("node: http on %s", addr)
	log.Fatal(http.ListenAndServe(addr, mux))
}
