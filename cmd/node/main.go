// Command node runs one SNS cluster member as a real OS process: any
// subset of the roles (front ends, manager, workers, caches, monitor,
// edge) attached to the cluster-wide SAN over the socket transport
// (internal/transport). A cluster is however many node processes you
// start, joined through any one of them.
//
// Two-terminal TranSend cluster on loopback:
//
//	# terminal 1 — control plane: manager, workers, caches
//	go run ./cmd/node -listen tcp:127.0.0.1:7401 -prefix b \
//	    -roles manager,worker,cache
//
//	# terminal 2 — serving plane: front ends + monitor, joins terminal 1
//	go run ./cmd/node -listen tcp:127.0.0.1:7402 -prefix a \
//	    -roles frontend,monitor -join tcp:127.0.0.1:7401 \
//	    -cache-host b -http :8089
//
//	curl 'localhost:8089/fetch?url=http://origin1.example/obj42.sjpg'
//	curl 'localhost:8089/status'
//
// Every message between the two terminals crosses a real TCP
// connection as length-framed, CRC-protected, batched wire bytes.
//
// -selftest N runs N requests against the cluster after it reports
// ready, prints a JSON summary (requests, failures, wire/frame error
// counters, batching figures), and exits non-zero on any failure —
// the mode CI's two-process smoke test uses. -selftest-kill NAME
// additionally SIGKILLs the named component (a cache partition hosted
// by a peer process) mid-run through that process's supervisor, then
// asserts the manager's process-peer duty respawned it by supervisor
// delegation with zero failed requests — the cross-process
// self-healing smoke. -selftest-overload N additionally fires a
// concurrent burst past the front end's admission bound (set it low
// with -fe-max-inflight, and set -cache-ttl so warm entries go stale)
// and asserts the degradation ladder held: degraded serves and typed
// sheds, never an unexplained failure — the overload smoke.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/distiller"
	"repro/internal/edge"
	"repro/internal/frontend"
	"repro/internal/manager"
	"repro/internal/obs"
	"repro/internal/san"
	"repro/internal/supervisor"
	"repro/internal/tacc"
	"repro/internal/vcache"
)

func main() {
	listen := flag.String("listen", "tcp:127.0.0.1:0", "transport bridge listen address (tcp:host:port or unix:/path)")
	join := flag.String("join", "", "comma-separated seed bridge addresses to join")
	id := flag.String("id", "", "bridge id (default: -prefix, then the listen address)")
	prefix := flag.String("prefix", "", "node-name prefix; must be unique per process (required with -join or when joined)")
	rolesFlag := flag.String("roles", "all", "roles to host: frontend,manager,worker,cache,monitor,edge (or 'all')")
	cacheHost := flag.String("cache-host", "", "node prefix of the process hosting the cache partitions (when the cache role is remote)")
	frontEnds := flag.Int("frontends", 2, "front ends (frontend role)")
	managers := flag.Int("managers", 1, "manager replicas hosted in this process (manager role)")
	managerRank := flag.Int("manager-rank", 0, "election rank of this process's first manager replica; global rank 0 boots as the acting primary, everyone else standby")
	cacheParts := flag.Int("caches", 2, "cache partitions (cluster-wide count; used to compute remote addresses too)")
	nodes := flag.Int("nodes", 8, "dedicated cluster nodes in this process")
	cacheNodes := flag.Int("cache-nodes", 0, "dedicated node count of the cache-hosting process (default: -nodes)")
	overflow := flag.Int("overflow", 2, "overflow pool nodes")
	spawnH := flag.Float64("H", 10, "spawn threshold (avg queue length)")
	dampD := flag.Duration("D", 5*time.Second, "spawn damping window")
	profileDir := flag.String("profiles", "", "profile DB directory (empty = temp)")
	httpAddr := flag.String("http", "", "serve the TranSend HTTP API on this address (frontend role)")
	edgeListen := flag.String("edge-listen", "", "serve the L7 front door on this address (edge role): one listener balancing across every FE replica heard heartbeating")
	feHTTP := flag.String("fe-http", "", "bind an HTTP adapter for every local front end on this host (port auto-assigned) and advertise it in FE heartbeats — what the edge routes to")
	edgeRetryBudget := flag.Float64("edge-retry-budget", 0.5, "edge retry budget: retries allowed per request, as a fraction (0 disables transparent retry)")
	reqDeadline := flag.Duration("request-deadline", 0, "end-to-end deadline stamped onto requests arriving without one (0 = none)")
	feMaxInflight := flag.Int("fe-max-inflight", 0, "per-front-end admitted request bound; past it requests degrade to stale cache or shed (0 = default)")
	feHighWater := flag.Float64("fe-queue-highwater", 0, "shed at admission when the least-loaded worker's queue estimate exceeds this (0 = disabled)")
	cacheTTL := flag.Duration("cache-ttl", 0, "cache entry freshness TTL; expired entries survive as stale data for degraded service (0 = never stale)")
	selftest := flag.Int("selftest", 0, "run N requests after ready, print a JSON summary, and exit")
	selftestKill := flag.String("selftest-kill", "", "mid-selftest, kill this cache component via its process's supervisor and assert a delegated respawn (requires the manager role here)")
	selftestSpacing := flag.Duration("selftest-spacing", 0, "pause between selftest requests (stretches the workload across externally injected faults)")
	selftestEpoch := flag.Uint64("selftest-expect-epoch", 0, "after the request loop, require a local manager replica to be acting primary at this election epoch or later (the failover smoke: SIGKILL the rank-0 process mid-run, assert the standby here took over)")
	selftestOverload := flag.Int("selftest-overload", 0, "after the request loop, fire a concurrent burst of N requests past the admission bound and require sheds > 0, degraded serves > 0, and no other failure (the overload smoke; pair with -fe-max-inflight and -cache-ttl)")
	readyTimeout := flag.Duration("ready-timeout", 30*time.Second, "how long to wait for the cluster to become serviceable")
	traceSample := flag.Int("trace-sample", 0, "request-trace sampling: record 1 in N requests (0 = default 1/64, 1 = every request, negative = off; shed/degraded/expired requests always record)")
	traceSlow := flag.Duration("trace-slow", 0, "log any traced request slower than this to stderr (0 = disabled)")
	seed := flag.Int64("seed", 0, "random seed (0 = time-based)")
	flag.Parse()

	roles, err := core.ParseRoles(*rolesFlag)
	if err != nil {
		log.Fatal(err)
	}
	if roles.Edge && *edgeListen == "" {
		log.Fatal("node: the edge role requires -edge-listen")
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	if *prefix == "" && *join != "" {
		log.Fatal("node: -prefix is required when joining a cluster (node names must be unique per process)")
	}
	var joins []string
	for _, a := range strings.Split(*join, ",") {
		if a = strings.TrimSpace(a); a != "" {
			joins = append(joins, a)
		}
	}

	registry := tacc.NewRegistry()
	distiller.RegisterAll(registry)
	workers := map[string]int{
		distiller.ClassSGIF: 1,
		distiller.ClassSJPG: 1,
		distiller.ClassHTML: 1,
	}

	cfg := core.Config{
		Seed:       *seed,
		Roles:      roles,
		NodePrefix: *prefix,
		Transport: core.TransportConfig{
			Listen: *listen,
			Join:   joins,
			ID:     *id,
		},
		DedicatedNodes: *nodes,
		OverflowNodes:  *overflow,
		FrontEnds:      *frontEnds,
		Managers:       *managers,
		ManagerRank:    *managerRank,
		CacheParts:     *cacheParts,
		Workers:        workers,
		Registry:       registry,
		Rules:          distiller.TranSendRules(),
		ProfileDir:     *profileDir,
		Policy: manager.Policy{
			SpawnThreshold: *spawnH,
			Damping:        *dampD,
			ReapThreshold:  0.5,
		},
		EdgeListen:         *edgeListen,
		FEHTTP:             *feHTTP,
		EdgeRetryBudget:    *edgeRetryBudget,
		RequestDeadline:    *reqDeadline,
		FEMaxInflight:      *feMaxInflight,
		FEQueueHighWater:   *feHighWater,
		CacheTTL:           *cacheTTL,
		TraceSampleRate:    *traceSample,
		TraceSlowThreshold: *traceSlow,
	}
	if *cacheHost != "" {
		cn := *cacheNodes
		if cn <= 0 {
			cn = *nodes
		}
		cfg.RemoteCaches = core.CacheAddrs(*cacheHost, *cacheParts, cn)
	}

	sys, err := core.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	log.Printf("node: bridge %s listening on %s (roles %s, prefix %q)",
		sys.Bridge.ID(), sys.Bridge.Advertise(), *rolesFlag, *prefix)

	if !sys.WaitReady(*readyTimeout) {
		log.Fatalf("node: cluster not serviceable within %s (peers: %v)", *readyTimeout, sys.Bridge.Peers())
	}
	log.Printf("node: ready — peers %v", sys.Bridge.Peers())

	if *selftest > 0 {
		opts := selftestOpts{
			n:           *selftest,
			kill:        *selftestKill,
			spacing:     *selftestSpacing,
			expectEpoch: *selftestEpoch,
			overload:    *selftestOverload,
			// The burst needs the warm set's entries expired into stale
			// data before it fires, or nothing can degrade.
			overloadAge: *cacheTTL + 200*time.Millisecond,
		}
		if err := runSelftest(sys, opts); err != nil {
			log.Fatal(err)
		}
		return
	}

	var debugSrv *http.Server
	if *httpAddr != "" {
		debugSrv = serveHTTP(sys, *httpAddr)
	}
	if eg := sys.Edge(); eg != nil {
		log.Printf("node: edge front door on http://%s", eg.HTTPAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("node: shutting down")
	if debugSrv != nil {
		shctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = debugSrv.Shutdown(shctx)
	}
}

// selftestReport is the JSON the CI smoke test asserts on.
type selftestReport struct {
	Requests       int     `json:"requests"`
	Failures       int     `json:"failures"`
	Distilled      uint64  `json:"distilled"`
	CacheHits      uint64  `json:"cache_hits"`
	Fallbacks      uint64  `json:"fallbacks"`
	WireErrors     uint64  `json:"wire_errors"`
	FrameErrors    uint64  `json:"frame_errors"`
	FramesOut      uint64  `json:"frames_out"`
	FramesIn       uint64  `json:"frames_in"`
	Batches        uint64  `json:"batches"`
	FramesPerBatch float64 `json:"frames_per_batch"`
	Chunked        uint64  `json:"chunked"`
	Reassembled    uint64  `json:"reassembled"`
	LargeBodyBytes int     `json:"large_body_bytes"`
	Peers          int     `json:"peers"`
	Supervisors    int     `json:"supervisors"`
	Delegated      uint64  `json:"delegated_restarts"`
	CacheRestarts  uint64  `json:"cache_restarts"`
	ManagerEpoch   uint64  `json:"manager_epoch"`
	Takeovers      uint64  `json:"manager_takeovers"`
	Shed           uint64  `json:"shed"`
	Degraded       uint64  `json:"degraded"`
	Backpressure   uint64  `json:"backpressure"`
	KillInjected   string  `json:"kill_injected,omitempty"`
}

// selftestOpts collects the knobs of the selftest modes; all but n are
// optional extras layered on the base request loop.
type selftestOpts struct {
	n           int
	kill        string
	spacing     time.Duration
	expectEpoch uint64
	overload    int           // size of the concurrent overload burst (0 = off)
	overloadAge time.Duration // how long the warm set ages before the burst (> cache TTL)
}

func runSelftest(sys *core.System, opts selftestOpts) error {
	ctx := context.Background()
	n, kill := opts.n, opts.kill
	rep := selftestReport{Requests: n}
	for i := 0; i < n; i++ {
		if opts.spacing > 0 && i > 0 {
			time.Sleep(opts.spacing)
		}
		if kill != "" && i == n/3 {
			// Remote fault injection: crash the victim through its own
			// process's supervisor, then keep the load running — the
			// cache is an optimization, so nothing may fail meanwhile.
			if err := selftestKillRemote(ctx, sys, kill); err != nil {
				return fmt.Errorf("selftest: kill %s: %w", kill, err)
			}
			rep.KillInjected = kill
			log.Printf("selftest: killed %s via its supervisor at request %d", kill, i)
		}
		url := fmt.Sprintf("http://origin%d.example/obj%d.sjpg", i%4, i%32)
		rctx, cancel := context.WithTimeout(ctx, 15*time.Second)
		_, err := sys.Request(rctx, url, fmt.Sprintf("user%d", i%8))
		cancel()
		if err != nil {
			rep.Failures++
			log.Printf("selftest: request %d (%s) failed: %v", i, url, err)
		}
	}
	if kill != "" {
		// The manager must infer the death from heartbeat silence and
		// delegate the restart to the victim's supervisor.
		if err := awaitDelegatedRestart(sys, 60*time.Second); err != nil {
			return fmt.Errorf("selftest: %w", err)
		}
		log.Printf("selftest: %s respawned by supervisor delegation", kill)
		// A post-recovery burst proves the respawned partition serves.
		for i := 0; i < 20; i++ {
			url := fmt.Sprintf("http://origin%d.example/obj%d.sjpg", i%4, i%16)
			rctx, cancel := context.WithTimeout(ctx, 15*time.Second)
			_, err := sys.Request(rctx, url, "post-recovery")
			cancel()
			rep.Requests++
			if err != nil {
				rep.Failures++
				log.Printf("selftest: post-recovery request %d failed: %v", i, err)
			}
		}
	}
	// Large-body leg: round-trip a body far above the chunking
	// threshold through a cache partition. When the partition lives in
	// a peer process (the smoke test's topology) the body crosses the
	// bridge as chunk fragments both ways, so the zero-wire-error gate
	// below also covers chunked relay and reassembly under real load.
	if n > 0 {
		if bytes, err := selftestLargeBody(ctx, sys); err != nil {
			rep.Failures++
			log.Printf("selftest: large-body leg failed: %v", err)
		} else {
			rep.LargeBodyBytes = bytes
		}
	}
	if opts.overload > 0 {
		if err := runOverloadBurst(ctx, sys, opts.overload, opts.overloadAge, &rep); err != nil {
			return fmt.Errorf("selftest: %w", err)
		}
	}
	if expectEpoch := opts.expectEpoch; expectEpoch > 0 {
		// The failover smoke: an external hand SIGKILLed the rank-0
		// manager process mid-run, and this process hosts a standby that
		// must have won (or must win shortly) the election at expectEpoch
		// or later. The wait tolerates the request loop outpacing the
		// election — the workload already proved requests survive the gap.
		if err := awaitLocalPrimary(sys, expectEpoch, 30*time.Second); err != nil {
			return fmt.Errorf("selftest: %w", err)
		}
		log.Printf("selftest: local manager replica is acting primary at epoch >= %d", expectEpoch)
	}
	for _, m := range sys.ManagerReplicas() {
		st := m.Stats()
		if st.Epoch > rep.ManagerEpoch {
			rep.ManagerEpoch = st.Epoch
		}
		rep.Takeovers += st.Takeovers
	}
	for _, fe := range sys.FrontEnds() {
		st := fe.Stats()
		rep.Distilled += st.Distilled
		rep.CacheHits += st.CacheDistilled + st.CacheOriginal
		rep.Fallbacks += st.Fallbacks
	}
	rep.WireErrors = sys.Net.Stats().WireErrors
	br := sys.Bridge.Stats()
	rep.FrameErrors = br.FrameErrors
	rep.FramesOut, rep.FramesIn = br.FramesOut, br.FramesIn
	rep.Batches = br.Batches
	if br.Batches > 0 {
		rep.FramesPerBatch = float64(br.FramesOut) / float64(br.Batches)
	}
	rep.Chunked, rep.Reassembled = br.Chunked, br.Reassembled
	rep.Backpressure = br.Backpressure
	rep.Peers = br.Peers
	if mgr := sys.Manager(); mgr != nil {
		st := mgr.Stats()
		rep.Supervisors = st.Supervisors
		rep.Delegated = st.Delegated
		rep.CacheRestarts = st.CacheRestarts
	}
	out, _ := json.Marshal(rep)
	fmt.Println(string(out))
	if rep.Failures > 0 || rep.WireErrors > 0 || rep.FrameErrors > 0 {
		return fmt.Errorf("selftest: %d failures, %d wire errors, %d frame errors",
			rep.Failures, rep.WireErrors, rep.FrameErrors)
	}
	if kill != "" && rep.Delegated == 0 {
		return fmt.Errorf("selftest: %s was killed but no delegated restart was recorded", kill)
	}
	if opts.overload > 0 {
		if rep.Shed == 0 {
			return fmt.Errorf("selftest: overload burst of %d shed nothing — admission control never tripped", opts.overload)
		}
		if rep.Degraded == 0 {
			return fmt.Errorf("selftest: overload burst of %d produced no degraded serves — the stale-cache path never ran", opts.overload)
		}
	}
	return nil
}

// runOverloadBurst drives the front end past its admission bound and
// verifies the BASE degradation ladder: warm a small URL set, let the
// entries expire into stale data, then fire n concurrent requests —
// half against the warm set, half against fresh URLs. Saturated
// requests with a stale answer must degrade; the rest must shed with
// the typed ErrOverloaded; anything else failing is a real failure and
// trips the zero-failure gate.
func runOverloadBurst(ctx context.Context, sys *core.System, n int, age time.Duration, rep *selftestReport) error {
	const warmSet = 8
	for i := 0; i < warmSet; i++ {
		url := fmt.Sprintf("http://overload.example/obj%d.sjpg", i)
		rctx, cancel := context.WithTimeout(ctx, 15*time.Second)
		_, err := sys.Request(rctx, url, "overload")
		cancel()
		if err != nil {
			return fmt.Errorf("overload warm request %d: %w", i, err)
		}
	}
	time.Sleep(age) // outlive the TTL: entries stay cached, now stale

	var wg sync.WaitGroup
	var okN, degraded, shed, failed atomic.Uint64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("http://overload-fresh.example/obj%d.sjpg", i)
			if i%2 == 0 {
				url = fmt.Sprintf("http://overload.example/obj%d.sjpg", i%warmSet)
			}
			rctx, cancel := context.WithTimeout(ctx, 15*time.Second)
			resp, err := sys.Request(rctx, url, "overload")
			cancel()
			switch {
			case errors.Is(err, frontend.ErrOverloaded):
				shed.Add(1)
			case err != nil:
				failed.Add(1)
				log.Printf("selftest: overload request %d (%s) failed: %v", i, url, err)
			case resp.Degraded:
				degraded.Add(1)
			default:
				okN.Add(1)
			}
		}(i)
	}
	wg.Wait()
	rep.Requests += n
	rep.Failures += int(failed.Load())
	rep.Shed = shed.Load()
	rep.Degraded = degraded.Load()
	log.Printf("selftest: overload burst of %d: ok=%d degraded=%d shed=%d failed=%d",
		n, okN.Load(), degraded.Load(), shed.Load(), failed.Load())
	return nil
}

// selftestLargeBody stores a 512 KB blob in a cache partition and
// reads it back, verifying content. 512 KB is well above the bridge's
// chunking threshold, so against a remote partition the blob streams
// as chunk fragments and reassembles on each hop; any corruption
// shows up here as a content mismatch and any framing fault as a
// wire/frame error in the report.
func selftestLargeBody(ctx context.Context, sys *core.System) (int, error) {
	nodes := sys.CacheNodes()
	if len(nodes) == 0 {
		return 0, fmt.Errorf("no cache partitions")
	}
	ep := sys.Net.Endpoint(san.Addr{Node: "selftest", Proc: "blob-client"}, 64)
	defer ep.Close()
	go func() {
		for msg := range ep.Inbox() {
			ep.DeliverReply(msg)
		}
	}()
	cc := vcache.NewClient(ep)
	for name, addr := range nodes {
		cc.AddNode(name, addr)
	}
	const size = 512 << 10
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	const key = "http://selftest.example/large-body.blob"
	lctx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	cc.Put(lctx, key, payload, "application/octet-stream", 0)
	data, _, release, ok := cc.GetView(lctx, key)
	if !ok {
		return 0, fmt.Errorf("get after put missed")
	}
	if len(data) != size {
		if release != nil {
			release()
		}
		return 0, fmt.Errorf("got %d bytes, want %d", len(data), size)
	}
	for i, b := range data {
		if b != byte(i*31) {
			if release != nil {
				release()
			}
			return 0, fmt.Errorf("content mismatch at byte %d", i)
		}
	}
	if release != nil {
		release()
	}
	return size, nil
}

// selftestKillRemote crashes a cache component hosted by a peer
// process: resolve its node from the deterministic cache placement,
// resolve that node's supervisor from the manager's hello table, and
// issue an OpKill through this process's own supervisor (the client
// half of the daemon protocol).
func selftestKillRemote(ctx context.Context, sys *core.System, name string) error {
	addr, ok := sys.CacheNodes()[name]
	if !ok {
		return fmt.Errorf("unknown cache component %q (selftest-kill supports cache partitions)", name)
	}
	mgr := sys.Manager()
	if mgr == nil {
		return fmt.Errorf("selftest-kill requires the manager role in this process")
	}
	var sup supervisor.HelloMsg
	deadline := time.Now().Add(15 * time.Second)
	for {
		if s, found := mgr.SupervisorFor(addr.Node); found {
			sup = s
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no supervisor hello for node %s", addr.Node)
		}
		time.Sleep(10 * time.Millisecond)
	}
	kctx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	ack, err := sys.Supervisor().Invoke(kctx, sup.Addr, supervisor.Command{
		Op: supervisor.OpKill, Target: name,
	})
	if err != nil {
		return err
	}
	if !ack.OK {
		return fmt.Errorf("supervisor refused: %s", ack.Err)
	}
	return nil
}

// awaitLocalPrimary blocks until a manager replica hosted by this
// process is the acting primary at epoch >= want — the post-failover
// condition the multi-manager smoke asserts after SIGKILLing the
// rank-0 process.
func awaitLocalPrimary(sys *core.System, want uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if m := sys.PrimaryManager(); m != nil && m.IsPrimary() && m.Epoch() >= want {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	m := sys.PrimaryManager()
	if m == nil {
		return fmt.Errorf("no local manager replica became primary within %s", timeout)
	}
	return fmt.Errorf("no local acting primary at epoch >= %d within %s (primary=%v epoch=%d)",
		want, timeout, m.IsPrimary(), m.Epoch())
}

// awaitDelegatedRestart blocks until the manager has completed at
// least one supervisor-delegated restart.
func awaitDelegatedRestart(sys *core.System, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st := sys.Manager().Stats(); st.Delegated >= 1 {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("no supervisor-delegated restart within %s (stats %+v)", timeout, sys.Manager().Stats())
}

// serveHTTP exposes the same /fetch and /status endpoints as
// cmd/transend, backed by this process's front ends. The returned
// server is already serving; the caller owns its graceful Shutdown.
func serveHTTP(sys *core.System, addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/fetch", func(w http.ResponseWriter, r *http.Request) {
		url := r.URL.Query().Get("url")
		if url == "" {
			http.Error(w, "missing url parameter", http.StatusBadRequest)
			return
		}
		ctx := r.Context()
		// Honor a propagated absolute deadline (the edge stamps one);
		// requests arriving without one get the local default.
		if h := r.Header.Get(edge.HeaderDeadline); h != "" {
			if ns, err := strconv.ParseInt(h, 10, 64); err == nil {
				var cancel context.CancelFunc
				ctx, cancel = context.WithDeadline(ctx, time.Unix(0, ns))
				defer cancel()
			}
		} else {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, 30*time.Second)
			defer cancel()
		}
		resp, err := sys.Request(ctx, url, r.URL.Query().Get("user"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set(edge.HeaderSource, resp.Source)
		if resp.Degraded {
			w.Header().Set(edge.HeaderDegraded, "1")
		}
		if resp.Trace.Valid() {
			w.Header().Set(edge.HeaderTraceID, resp.Trace.String())
		}
		w.Write(resp.Blob.Data)
	})
	// /status defaults to the machine-readable registry snapshot (every
	// component's published metrics under dotted names); ?format=text
	// keeps the human-oriented dump the monitor renders.
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "text" {
			if sys.Mon != nil {
				fmt.Fprintln(w, sys.Mon.RenderTable())
			}
			for _, fe := range sys.FrontEnds() {
				fmt.Fprintf(w, "%s: %+v\n", fe.ID(), fe.Stats())
			}
			for _, mgr := range sys.ManagerReplicas() {
				st := mgr.Stats()
				fmt.Fprintf(w, "manager replica (primary=%v epoch=%d): %+v\n", st.Primary, st.Epoch, st)
			}
			if mgr := sys.Manager(); mgr != nil {
				for _, sup := range mgr.Supervisors() {
					fmt.Fprintf(w, "supervisor: %s (prefix %q)\n", sup.Addr, sup.Prefix)
				}
			}
			fmt.Fprintf(w, "supervisor(local): %s %+v\n", sys.Supervisor().Addr(), sys.Supervisor().Stats())
			fmt.Fprintf(w, "san: wire=%v %+v\n", sys.Net.WireMode(), sys.Net.Stats())
			fmt.Fprintf(w, "bridge: %+v\n", sys.Bridge.Stats())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(sys.Registry().Snapshot())
	})
	// /metrics is the registry in Prometheus text exposition format.
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		sys.Registry().WritePrometheus(w)
	})
	// /trace?id=<hex> renders the span tree this process can answer for
	// — local spans plus whatever peer digests have been ingested.
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		idStr := r.URL.Query().Get("id")
		if idStr == "" {
			http.Error(w, "missing id parameter", http.StatusBadRequest)
			return
		}
		id, err := obs.ParseTraceID(idStr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		spans := sys.Tracer().Spans(id)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Trace string     `json:"trace"`
			Spans []obs.Span `json:"spans"`
		}{id.String(), spans})
	})
	// Local fault injection for multi-process chaos scripts: crash a
	// component this process hosts; whoever carries its process-peer
	// duty (possibly a manager in another process) must respawn it.
	mux.HandleFunc("/kill", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("component")
		if name == "" {
			http.Error(w, "missing component parameter", http.StatusBadRequest)
			return
		}
		if err := sys.KillComponent(name); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		fmt.Fprintf(w, "killed %s\n", name)
	})
	// A configured server, not bare ListenAndServe: header timeouts so a
	// slow-header client can't pin goroutines, and a handle the caller
	// can Shutdown gracefully.
	srv := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("node: http listen %s: %v", addr, err)
	}
	log.Printf("node: http on %s", ln.Addr())
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatalf("node: http: %v", err)
		}
	}()
	return srv
}
