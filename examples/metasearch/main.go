// Metasearch example (§5.1): an aggregator that queries several search
// engines and collates the top results into one page — the paper built
// it in 2.5 hours because scalability, fault tolerance and caching
// came free from the SNS layer. Here the composition also rides the
// platform: the aggregation worker runs under a worker stub and is
// dispatched through the manager.
//
// Run: go run ./examples/metasearch
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/distiller"
	"repro/internal/tacc"
)

func main() {
	registry := tacc.NewRegistry()
	registry.Register(distiller.ClassSearch, func() tacc.Worker { return distiller.MetasearchAggregator{} })

	sys, err := core.Start(core.Config{
		Seed:           3,
		FrontEnds:      1,
		Workers:        map[string]int{distiller.ClassSearch: 2},
		Registry:       registry,
		BeaconInterval: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	if !sys.WaitReady(10 * time.Second) {
		log.Fatal("system did not come up")
	}
	fe := sys.FrontEnds()[0]

	// Upstream engines' result pages (in production these are
	// fetched live; the workers are indifferent).
	rng := rand.New(rand.NewSource(9))
	query := "scalable clusters"
	task := &tacc.Task{
		Key: "metasearch:" + query,
		Inputs: []tacc.Blob{
			{MIME: "text/html", Data: distiller.GenerateResultsPage(rng, "AltaVista", query, 10)},
			{MIME: "text/html", Data: distiller.GenerateResultsPage(rng, "Lycos", query, 10)},
			{MIME: "text/html", Data: distiller.GenerateResultsPage(rng, "Excite", query, 10)},
			{MIME: "text/html", Data: distiller.GenerateResultsPage(rng, "WebCrawler", query, 10)},
		},
		Params: map[string]string{"query": query, "perEngine": "3"},
	}
	out, err := fe.ManagerStub().Dispatch(context.Background(), distiller.ClassSearch, task)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collated %s results from 4 engines into %d bytes:\n\n", out.Meta["results"], out.Size())
	for _, line := range strings.Split(string(out.Data), "\n") {
		if strings.HasPrefix(line, "<li>") {
			fmt.Println("  " + line)
		}
	}
}
