// TranSend example: the paper's flagship service — a scalable Web
// distillation proxy — exercised end to end: trace-driven load, cache
// warmup, distillation ratios, autoscaling under a burst, and fault
// injection (worker crash masked by BASE fallbacks, manager crash
// masked by cached beacon state).
//
// Run: go run ./examples/transend
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/distiller"
	"repro/internal/manager"
	"repro/internal/media"
	"repro/internal/tacc"
	"repro/internal/trace"
)

func main() {
	registry := tacc.NewRegistry()
	distiller.RegisterAll(registry)

	sys, err := core.Start(core.Config{
		Seed:           42,
		DedicatedNodes: 6,
		OverflowNodes:  2,
		FrontEnds:      1,
		CacheParts:     2,
		Workers: map[string]int{
			distiller.ClassSGIF: 1,
			distiller.ClassSJPG: 1,
			distiller.ClassHTML: 1,
		},
		Registry:       registry,
		Rules:          distiller.TranSendRules(),
		BeaconInterval: 100 * time.Millisecond,
		ReportInterval: 100 * time.Millisecond,
		Policy: manager.Policy{
			SpawnThreshold: 5,
			Damping:        2 * time.Second,
			ReapThreshold:  0.5,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	waitForBeacons(sys)

	ctx := context.Background()
	sys.SetProfile("dialup-user", "quality", "25")
	sys.SetProfile("dialup-user", "scale", "2")

	// --- Distillation on trace-shaped content -----------------------
	fmt.Println("== distillation ==")
	var origBytes, distBytes int
	cfg := trace.DefaultConfig(7)
	cfg.Duration = 30 * time.Second
	records := trace.Generate(cfg)
	served := 0
	for _, rec := range records {
		if rec.MIME != media.MIMESJPG && rec.MIME != media.MIMESGIF {
			continue
		}
		if served >= 20 {
			break
		}
		resp, err := sys.Request(ctx, rec.URL, "dialup-user")
		if err != nil {
			log.Fatalf("request %s: %v", rec.URL, err)
		}
		if resp.Source == "distilled" {
			served++
			orig := atoi(resp.Blob.Meta["origSize"])
			origBytes += orig
			distBytes += resp.Blob.Size()
		}
	}
	if distBytes > 0 {
		fmt.Printf("distilled %d images: %d KB -> %d KB (%.1fx reduction)\n",
			served, origBytes/1024, distBytes/1024, float64(origBytes)/float64(distBytes))
	}

	// --- Cache effectiveness ----------------------------------------
	fmt.Println("== cache ==")
	url := trace.ObjectURL(123, media.MIMESJPG)
	first, _ := sys.Request(ctx, url, "dialup-user")
	second, _ := sys.Request(ctx, url, "dialup-user")
	fmt.Printf("first: %s, repeat: %s\n", first.Source, second.Source)

	// --- Worker crash is masked --------------------------------------
	fmt.Println("== fault tolerance ==")
	victim := findWorker(sys, distiller.ClassSJPG)
	fmt.Printf("crashing %s ...\n", victim)
	if err := sys.KillWorker(victim); err != nil {
		log.Fatal(err)
	}
	resp, err := sys.Request(ctx, trace.ObjectURL(9999, media.MIMESJPG), "dialup-user")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("request during crash served via %q (user still gets bytes)\n", resp.Source)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err = sys.Request(ctx, trace.ObjectURL(31337, media.MIMESJPG), "dialup-user")
		if err == nil && resp.Source == "distilled" {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("after recovery: %q (manager respawned the distiller)\n", resp.Source)

	// --- Manager crash is masked --------------------------------------
	old := sys.Manager()
	sys.KillManager()
	resp, err = sys.Request(ctx, trace.ObjectURL(555, media.MIMESGIF), "dialup-user")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("request with dead manager served via %q (stale beacon state)\n", resp.Source)
	for time.Now().Before(time.Now().Add(5 * time.Second)) {
		if sys.Manager() != old {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("front-end watchdog restarted the manager; workers re-registered")

	// --- Monitor view --------------------------------------------------
	fmt.Println("== monitor ==")
	time.Sleep(500 * time.Millisecond)
	table := sys.Mon.RenderTable()
	for _, line := range strings.SplitN(table, "\n", 8) {
		fmt.Println(line)
	}
}

func waitForBeacons(sys *core.System) {
	if !sys.WaitReady(10 * time.Second) {
		log.Fatal("system did not come up")
	}
}

func findWorker(sys *core.System, class string) string {
	for _, fe := range sys.FrontEnds() {
		for _, w := range fe.ManagerStub().Workers(class) {
			return w.ID
		}
	}
	return ""
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return n
		}
		n = n*10 + int(c-'0')
	}
	return n
}
