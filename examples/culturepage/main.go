// Bay Area Culture Page example (§5.1): an aggregator that scrapes
// event listings from several cultural sites and collates them into a
// single "culture this week" page. The paper highlights its BASE
// "approximate answers" behaviour: the date-extraction heuristics are
// deliberately loose, pick up 10-20% spurious entries, and the service
// is still useful — users just ignore them.
//
// Run: go run ./examples/culturepage
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/distiller"
	"repro/internal/tacc"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	sites := []string{"Berkeley Arts", "SF Symphony", "Oakland Live", "Peninsula Stage"}
	var inputs []tacc.Blob
	total := 0
	for _, site := range sites {
		n := 4 + rng.Intn(4)
		total += n
		inputs = append(inputs, tacc.Blob{
			MIME: "text/html",
			Data: distiller.GenerateCulturePage(rng, site, n),
		})
	}

	// The aggregator is one stateless TACC worker; composing it with
	// the unmodified TranSend service layer would add distillation
	// of the result automatically (we run it directly here).
	agg := distiller.CultureAggregator{}
	out, err := agg.Process(context.Background(), &tacc.Task{
		Inputs: inputs,
		Params: map[string]string{"maxevents": "40"},
	})
	if err != nil {
		log.Fatal(err)
	}

	extracted := 0
	fmt.Printf("aggregated %d sites advertising %d real events\n\n", len(sites), total)
	for _, line := range strings.Split(string(out.Data), "\n") {
		if strings.HasPrefix(line, "<li>") {
			extracted++
			if extracted <= 12 {
				fmt.Println("  " + line)
			}
		}
	}
	fmt.Printf("\nextracted %d calendar entries (>= the %d real ones; the surplus\n", extracted, total)
	fmt.Println("is the documented 10-20% spurious-match rate — BASE approximate answers)")
}
