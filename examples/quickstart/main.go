// Quickstart: build a complete scalable network service in ~50 lines.
//
// The service is the paper's simplest example (§5.1): a keyword
// filter that marks up user-chosen words in every HTML page. All the
// SNS machinery — cluster, manager, load balancing, fault tolerance,
// caching, profiles — comes from the platform; the "service" is one
// registered worker class plus a one-line dispatch rule.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/distiller"
	"repro/internal/media"
	"repro/internal/origin"
	"repro/internal/tacc"
)

func main() {
	// 1. Register the TACC building block the service composes.
	registry := tacc.NewRegistry()
	registry.Register(distiller.ClassKeyword, func() tacc.Worker { return distiller.KeywordFilter{} })

	// 2. Content universe: one static origin page.
	static := origin.NewStatic()
	static.Put("http://news.example/today.html", tacc.Blob{
		MIME: media.MIMEHTML,
		Data: []byte(strings.Repeat("<p>clusters of workstations serve the internet</p>\n", 40)),
	})

	// 3. The service: every HTML page goes through the keyword filter.
	rules := func(url, mime string, profile map[string]string) tacc.Pipeline {
		if mime == media.MIMEHTML && profile["keywords"] != "" {
			return tacc.Pipeline{{Class: distiller.ClassKeyword}}
		}
		return nil
	}

	// 4. Boot the platform.
	sys, err := core.Start(core.Config{
		Seed:      1,
		FrontEnds: 1,
		Workers:   map[string]int{distiller.ClassKeyword: 2},
		Registry:  registry,
		Rules:     rules,
		Origin:    static,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	if !sys.WaitReady(10 * time.Second) {
		log.Fatal("system did not come up")
	}

	// 5. Mass customization: alice wants "clusters" highlighted.
	if err := sys.SetProfile("alice", "keywords", "clusters"); err != nil {
		log.Fatal(err)
	}

	resp, err := sys.Request(context.Background(), "http://news.example/today.html", "alice")
	if err != nil {
		log.Fatal(err)
	}
	marked := strings.Count(string(resp.Blob.Data), "<b style")
	fmt.Printf("served %d bytes via %q with %d keyword highlights\n",
		resp.Blob.Size(), resp.Source, marked)

	// Unpersonalized users get the page untouched.
	resp, err = sys.Request(context.Background(), "http://news.example/today.html", "bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob (no profile) got %q, %d highlights\n",
		resp.Source, strings.Count(string(resp.Blob.Data), "<b style"))
}
