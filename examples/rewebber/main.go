// Anonymous rewebber example (§5.1): encryption and decryption workers
// let authors publish anonymously; key material lives in the ACID
// profile database, decrypted pages are BASE data. The paper's
// rewebber was built on TACC in one week; here it is two worker
// classes and a profile entry.
//
// Run: go run ./examples/rewebber
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/distiller"
	"repro/internal/tacc"
)

func main() {
	registry := tacc.NewRegistry()
	registry.Register(distiller.ClassEncrypt, func() tacc.Worker { return distiller.EncryptWorker{} })
	registry.Register(distiller.ClassDecrypt, func() tacc.Worker { return distiller.DecryptWorker{} })

	sys, err := core.Start(core.Config{
		Seed:      5,
		FrontEnds: 1,
		Workers: map[string]int{
			distiller.ClassEncrypt: 2, // "computationally intensive and highly parallelizable"
			distiller.ClassDecrypt: 2,
		},
		Registry:       registry,
		BeaconInterval: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	// The publisher's key pair lives in the customization database.
	if err := sys.SetProfile("publisher-7", "rewebkey", "deadbeef-key-material"); err != nil {
		log.Fatal(err)
	}

	if !sys.WaitReady(10 * time.Second) {
		log.Fatal("system did not come up")
	}
	fe := sys.FrontEnds()[0]

	ctx := context.Background()
	profile := sys.Profile.Get("publisher-7")
	pamphlet := tacc.Blob{
		MIME: "text/html",
		Data: []byte("<html><body><h1>Anonymous pamphlet</h1><p>cluster-based services scale.</p></body></html>"),
	}

	// Publish: encrypt through the platform's workers.
	sealed, err := fe.ManagerStub().Dispatch(ctx, distiller.ClassEncrypt,
		&tacc.Task{Key: "pamphlet-1", Input: pamphlet, Profile: profile})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published: %d plaintext bytes -> %d sealed bytes (%s)\n",
		pamphlet.Size(), sealed.Size(), sealed.MIME)
	if strings.Contains(string(sealed.Data), "pamphlet") {
		log.Fatal("plaintext leaked!")
	}

	// Read: decrypt via the pipeline (the cache would hold the
	// decrypted page as regenerable BASE data).
	opened, err := fe.ManagerStub().Dispatch(ctx, distiller.ClassDecrypt,
		&tacc.Task{Key: "pamphlet-1", Input: sealed, Profile: profile})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrieved: %d bytes, MIME %s, intact=%v\n",
		opened.Size(), opened.MIME, string(opened.Data) == string(pamphlet.Data))

	// A reader with the wrong key gets nothing.
	_, err = fe.ManagerStub().Dispatch(ctx, distiller.ClassDecrypt,
		&tacc.Task{Input: sealed, Profile: map[string]string{"rewebkey": "wrong"}})
	fmt.Printf("wrong key rejected: %v\n", err != nil)
}
