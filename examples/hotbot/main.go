// HotBot example: the paper's search engine (§3.2) — a statically
// partitioned inverted index with parallel fan-out, result collation,
// incremental delivery from the result cache, and both failure modes:
// fast-restart (graceful corpus degradation, the 54M -> 51M story) and
// cross-mount (100% availability).
//
// Run: go run ./examples/hotbot
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/san"
	"repro/internal/search"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	fmt.Println("building corpus (20k docs)...")
	docs := search.GenerateCorpus(rng, 20000, 3000)

	for _, mode := range []search.FailureMode{search.FastRestart, search.CrossMount} {
		fmt.Printf("\n=== failure mode: %s ===\n", mode)
		runMode(mode, docs)
	}
}

func runMode(mode search.FailureMode, docs []search.Doc) {
	net := san.NewNetwork(1)
	cl := cluster.New(net)
	const partitions = 13 // half of HotBot's 26 nodes
	for i := 0; i < partitions; i++ {
		cl.AddNode(fmt.Sprintf("node%d", i), false)
	}
	defer cl.StopAll()

	engine, err := search.Deploy(search.Config{
		Net:        net,
		Cluster:    cl,
		Partitions: partitions,
		Mode:       mode,
		Seed:       7,
	}, docs)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	query := "ba de"
	res := engine.Query(ctx, query, 10)
	fmt.Printf("query %q: %d hits over %d/%d docs (%d shards)\n",
		query, len(res.Hits), res.DocsSearched, res.TotalDocs, res.ShardsAlive)
	for i, h := range res.Hits {
		if i >= 3 {
			break
		}
		fmt.Printf("  %d. doc%-6d %-30.30s score %.2f\n", i+1, h.Doc, h.Title, h.Score)
	}

	// Incremental delivery from the result cache.
	page2, ok := engine.Page(query, 2, 3)
	fmt.Printf("page 2 from result cache: ok=%v (%d hits)\n", ok, len(page2))

	// Kill one node mid-flight — February 1997: HotBot moved
	// datacenters without ever going down.
	fmt.Println("killing node3 ...")
	if err := cl.KillNode("node3"); err != nil {
		log.Fatal(err)
	}
	res = engine.Query(ctx, "bi du", 10)
	switch mode {
	case search.FastRestart:
		fmt.Printf("degraded: searched %d of %d docs (partial=%v) — still useful\n",
			res.DocsSearched, res.TotalDocs, res.Partial)
	case search.CrossMount:
		fmt.Printf("replicas took over: searched %d of %d docs (partial=%v), fallbacks=%d\n",
			res.DocsSearched, res.TotalDocs, res.Partial, engine.Stats().ReplicaFallbacks)
	}
}
